package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// The standalone loader resolves package patterns with `go list -export
// -deps`, which compiles dependencies into the build cache and hands back
// export-data paths. Target packages are then parsed from source and
// type-checked against that export data — the same shape as the go vet
// vettool protocol, with `go list` playing the role of cmd/go's build graph.
// Everything runs offline: the only tool invoked is the Go toolchain itself.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadedPackage is one parsed and type-checked target package.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Check loads every package matching the patterns (relative to dir, "" for
// the current directory) and runs the analyzers over each. Diagnostics come
// back sorted per package, packages in `go list` order.
func Check(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, exports, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var diags []Diagnostic
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		lp, err := typecheckListed(fset, imp, p)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", p.ImportPath, err)
		}
		diags = append(diags, Run(lp.Fset, lp.Files, lp.Pkg, lp.Info, analyzers)...)
	}
	return diags, nil
}

// listPackages invokes go list and returns the targeted packages plus the
// merged import-path → export-data map covering every dependency.
func listPackages(dir string, patterns []string) ([]*listedPackage, map[string]string, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	exports := map[string]string{}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := &listedPackage{}
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Vendored import paths map source-level paths to listed ones; merge
		// them so the importer can chase either spelling.
		for from, to := range p.ImportMap {
			if exp, ok := exports[to]; ok {
				exports[from] = exp
			}
		}
		pkgs = append(pkgs, p)
	}
	// Second pass for ImportMap entries whose target was listed later.
	for _, p := range pkgs {
		for from, to := range p.ImportMap {
			if exp, ok := exports[to]; ok {
				exports[from] = exp
			}
		}
	}
	return pkgs, exports, nil
}

// newExportImporter builds a types.Importer that reads gc export data files.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheckListed parses and type-checks one go-list package from source.
func typecheckListed(fset *token.FileSet, imp types.Importer, p *listedPackage) (*LoadedPackage, error) {
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	return typecheckFiles(fset, imp, p.ImportPath, files)
}

// typecheckFiles parses the named files as one package and type-checks them.
func typecheckFiles(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: importerWithUnsafe{imp},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// newInfo allocates the types.Info maps the analyzers read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// importerWithUnsafe short-circuits the one package that has no export data.
type importerWithUnsafe struct{ base types.Importer }

func (i importerWithUnsafe) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}
