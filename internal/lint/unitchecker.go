package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// This file implements the cmd/go vettool protocol (the shape of
// x/tools/go/analysis/unitchecker, stdlib-only): `go vet -vettool=BIN pkgs`
// invokes BIN once per package with a single JSON config-file argument
// ending in .cfg. The config names the package's sources and maps every
// dependency to the export data cmd/go already built, so the tool
// type-checks one compilation unit without running the build itself.

// vetConfig mirrors the fields cmd/go writes into vet.cfg. Unknown fields
// are ignored, so the struct tracks only what the suite needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker executes the analyzers for one vet config file and returns
// the process exit code: 0 clean, 2 findings — the contract cmd/go expects
// from a vet tool. Diagnostics go to w in the pinned file:line:col format.
func RunUnitchecker(cfgFile string, analyzers []*Analyzer, w io.Writer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "eagletreevet: %v\n", err)
		return 1
	}
	// cmd/go expects the facts output to exist even though this suite
	// computes no cross-package facts; an empty file keeps the build-cache
	// bookkeeping happy. Dependency-only invocations stop here.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "eagletreevet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := checkVetUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "eagletreevet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("vet config %s: unsupported compiler %q", path, cfg.Compiler)
	}
	return cfg, nil
}

func checkVetUnit(cfg *vetConfig, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for from, to := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[to]; ok {
			exports[from] = file
		}
	}
	imp := newExportImporter(fset, exports)
	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if filepath.IsAbs(f) {
			files[i] = f
		} else {
			files[i] = filepath.Join(cfg.Dir, f)
		}
	}
	lp, err := typecheckFiles(fset, imp, cfg.ImportPath, files)
	if err != nil {
		return nil, err
	}
	return Run(lp.Fset, lp.Files, lp.Pkg, lp.Info, analyzers), nil
}
