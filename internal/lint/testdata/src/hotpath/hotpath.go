// Package hotpath is a lint fixture: annotated functions exercising every
// allocating construct the hotpath analyzer flags, plus the allowed patterns
// (struct literals, append, new, pointer-shaped and zero-size boxing).
package hotpath

import "fmt"

type event struct {
	id   int
	next *event
}

type sink interface{ accept(any) }

var free *event

//eagletree:hotpath
func allocMap() map[int]int {
	return map[int]int{1: 1} // want "allocates: map literal"
}

//eagletree:hotpath
func allocSliceLit() []int {
	return []int{1, 2} // want "allocates: slice literal"
}

//eagletree:hotpath
func allocMake(n int) []int {
	return make([]int, n) // want "allocates: make"
}

//eagletree:hotpath
func allocClosure(n int) func() int {
	return func() int { return n } // want "allocates: closure literal"
}

//eagletree:hotpath
func allocFmt(id int) string {
	return fmt.Sprintf("event %d", id) // want "calls fmt.Sprintf"
}

//eagletree:hotpath
func boxValue(s sink, id int) {
	s.accept(id) // want "allocates: int boxed into"
}

// allocAllowed holds every pattern the analyzer deliberately permits: the
// pooled-fallback struct literal, append, new, and boxing of values that fit
// the interface data word.
//
//eagletree:hotpath
func allocAllowed(s sink, pool []*event, v any) *event {
	ev := free
	if ev == nil {
		ev = &event{id: 1}
	}
	pool = append(pool, ev)
	_ = pool
	s.accept(ev)
	s.accept(struct{}{})
	s.accept(v)
	_ = new(event)
	return ev
}

// cold is unannotated: the same constructs pass without comment.
func cold() map[int]int {
	return map[int]int{1: 1}
}
