// Package snapfix is a lint fixture for the snapshotcomplete analyzer: one
// fully covered struct, one whose decode path misses a freshly added field,
// one encode-only type, and one field deliberately excluded on both sides.
package snapfix

type counters struct {
	Reads  uint64
	Writes uint64
	Added  uint64 // serialized by encode, forgotten by decode
}

type meta struct {
	Name    string
	Scratch int // rebuilt after restore; excluded via meta[-Scratch]
}

type orphan struct {
	X uint64
}

type enc struct{ b []byte }

func (e *enc) u64(v uint64) {}
func (e *enc) str(s string) {}

type dec struct{ b []byte }

func (d *dec) u64() uint64 { return 0 }
func (d *dec) str() string { return "" }

//eagletree:snapshot encode counters meta[-Scratch] orphan
func (e *enc) put(c *counters, m *meta, o *orphan) { // want "snapshot type orphan has no decode path"
	e.u64(c.Reads)
	e.u64(c.Writes)
	e.u64(c.Added)
	e.str(m.Name)
	e.u64(o.X)
}

//eagletree:snapshot decode counters meta[-Scratch]
func (d *dec) get(c *counters, m *meta) { // want "decode path for counters misses field(s) Added"
	c.Reads = d.u64()
	c.Writes = d.u64()
	m.Name = d.str()
}
