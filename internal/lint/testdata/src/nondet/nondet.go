// Package nondet is a lint fixture: a canonical-output package exercising
// every nondeterminism diagnostic and both suppression directives.
//
//eagletree:canonical
package nondet

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock in a canonical package.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in canonical package"
}

// StampAllowed is telemetry: the reading never reaches canonical bytes.
func StampAllowed() int64 {
	//lint:wallclock telemetry only, never serialized
	return time.Now().UnixNano()
}

// Draw reads the process-global source.
func Draw() int {
	return rand.Intn(6) // want "global math/rand source in canonical package"
}

// DrawSeeded owns its generator, so it is deterministic under a fixed seed.
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Sum folds map values in random order; addition happens to commute here,
// but the analyzer cannot know that without an annotation.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is random per run"
		total += v
	}
	return total
}

// Keys iterates unsorted but sorts before the keys can reach any output.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //lint:ordered keys are sorted before use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
