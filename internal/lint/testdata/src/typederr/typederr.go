// Package typederr is a lint fixture for the typed-error contract: bare
// constructor returns from the exported API are flagged, %w wrapping and
// unexported helpers are not.
//
//eagletree:typederrors
package typederr

import (
	"errors"
	"fmt"
)

// ErrBad is the package sentinel; its declaration is the contract's
// foundation, not a violation.
var ErrBad = errors.New("typederr: bad input")

// Open returns a bare fmt.Errorf.
func Open(name string) error {
	if name == "" {
		return fmt.Errorf("empty name %q", name) // want "bare fmt.Errorf"
	}
	return nil
}

// Close returns an inline errors.New.
func Close() error {
	return errors.New("cannot close") // want "bare errors.New"
}

// Wrap decorates the sentinel with context; %w is the contract.
func Wrap(name string) error {
	return fmt.Errorf("%w: %q", ErrBad, name)
}

// helper is unexported: it may build raw errors, which are wrapped before
// they escape the package.
func helper() error {
	return fmt.Errorf("internal detail")
}

type conn struct{}

// Fail is exported but hangs off an unexported type, so it is not an API
// boundary.
func (c *conn) Fail() error {
	return errors.New("conn failed")
}
