package lint

import (
	"go/ast"
	"go/types"
)

// HotPath turns the runtime zero-alloc guards (alloc-counting benchmarks and
// tests) into source-level errors: a function annotated `//eagletree:hotpath`
// — the dispatch loop, the engine scheduling core, the fault hook — must not
// contain constructs that allocate on every execution:
//
//   - map, slice and array-of-slice composite literals (make included);
//   - function literals (closures capture and allocate);
//   - calls into package fmt (formatting allocates even when discarded);
//   - interface conversions that box a non-pointer-shaped value. Pointers,
//     channels, maps, funcs and unsafe.Pointer fit an interface word without
//     allocating; structs, strings, slices and integers do not.
//
// Struct literals (&Event{} freelist fallbacks, zero-size struct{}{} values)
// and append are deliberately allowed: the first is amortized by pooling and
// the second by capacity growth, both patterns the hot paths rely on.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //eagletree:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := funcDirective(fd, directiveHotPath); !ok {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s allocates: closure literal (hoist it to a struct field bound once)", name)
			return false // the literal body runs later; only its creation is hot
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok {
				return true
			}
			switch u := tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path %s allocates: map literal", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path %s allocates: slice literal", name)
			case *types.Struct:
				// Struct literals are allowed, but values boxed into their
				// interface-typed fields still allocate.
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						key, _ := ast.Unparen(kv.Key).(*ast.Ident)
						if field, ok := pass.Info.Uses[key].(*types.Var); ok {
							checkBoxing(pass, name, field.Type(), kv.Value)
						}
						continue
					}
					if i < u.NumFields() {
						checkBoxing(pass, name, u.Field(i).Type(), elt)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
					if lt, ok := pass.Info.Types[n.Lhs[i]]; ok {
						checkBoxing(pass, name, lt.Type, rhs)
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				return true
			}
			tv, ok := pass.Info.Types[n.Type]
			if !ok {
				return true
			}
			for _, v := range n.Values {
				checkBoxing(pass, name, tv.Type, v)
			}
		case *ast.ReturnStmt:
			sig, ok := pass.Info.Defs[fd.Name].Type().(*types.Signature)
			if !ok || sig.Results().Len() != len(n.Results) {
				return true
			}
			for i, res := range n.Results {
				checkBoxing(pass, name, sig.Results().At(i).Type(), res)
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, allocating builtins, and arguments boxed into
// interface parameters.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name

	// Builtins: make always allocates its map/slice/chan; conversions are
	// handled below through the boxing check.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" {
				pass.Reportf(call.Pos(), "hot path %s allocates: make", name)
			}
			return
		}
	}

	// Explicit conversion T(x): boxing when T is an interface.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, name, tv.Type, call.Args[0])
		}
		return
	}

	obj := funcObj(pass.Info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s: formatting allocates (move it off the hot path)", name, obj.Name())
		return
	}

	// Arguments assigned to interface parameters.
	sig := callSignature(pass.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a spread slice is passed as-is
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, name, pt, arg)
	}
}

// callSignature resolves the signature of a (non-builtin, non-conversion)
// call expression.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkBoxing reports when assigning src to a destination of type dst would
// box a non-pointer-shaped value into an interface.
func checkBoxing(pass *Pass, fn string, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.Info.Types[src]
	if !ok {
		return
	}
	st := tv.Type
	if st == nil || tv.IsNil() {
		return
	}
	if _, isIface := st.Underlying().(*types.Interface); isIface {
		return // already boxed
	}
	if pointerShaped(st) {
		return // fits the interface data word without allocating
	}
	if zeroSized(st) {
		return // struct{}{} and friends box to a shared zero base
	}
	pass.Reportf(src.Pos(), "hot path %s allocates: %s boxed into %s (pass a pointer, or keep the value out of interfaces)",
		fn, types.TypeString(st, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// pointerShaped reports whether values of t fit an interface data word
// directly: pointers, unsafe.Pointer, channels, maps and funcs.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// zeroSized reports whether t occupies no storage.
func zeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !zeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || zeroSized(u.Elem())
	}
	return false
}
