package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Nondeterminism forbids sources of run-to-run variation in packages marked
// `//eagletree:canonical` — the packages whose bytes are diffed across
// sequential, parallel and restored runs (spec CanonKey and documents,
// snapshot encoding, trace hashing, report rendering). Three constructs are
// flagged:
//
//   - time.Now: wall-clock readings differ per run. Telemetry-only sites are
//     suppressed with `//lint:wallclock <why>`.
//   - the global math/rand (and math/rand/v2) source: its state is shared
//     process-wide, so concurrent sweeps interleave draws unpredictably.
//     Seeded *rand.Rand instances (rand.New) are fine and not flagged.
//   - `for ... range m` over a map: Go randomizes iteration order per run.
//     Sites whose order provably cannot reach the output carry
//     `//lint:ordered <why>`.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid time.Now, global math/rand and unordered map iteration in canonical-output packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if !packageMarked(pass.Files, markerCanonical) {
		return
	}
	for _, f := range pass.Files {
		sup := fileSuppressions(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, _ := pass.Info.Uses[n.Sel].(*types.Func)
				if obj == nil {
					return true
				}
				if isPkgFunc(obj, "time", "Now") {
					if !sup.allows(pass.Fset, n.Pos(), suppressWallclock) {
						pass.Reportf(n.Pos(), "time.Now in canonical package %s (use the simulation clock, or annotate telemetry with %s)",
							pass.Pkg.Name(), suppressWallclock)
					}
					return true
				}
				if globalRandFunc(obj) {
					pass.Reportf(n.Pos(), "global math/rand source in canonical package %s: %s.%s shares process-wide state (seed a *rand.Rand instead)",
						pass.Pkg.Name(), obj.Pkg().Name(), obj.Name())
				}
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if !sup.allows(pass.Fset, n.Pos(), suppressOrdered) {
					pass.Reportf(n.Pos(), "map iteration order is random per run in canonical package %s (sort the keys, or annotate a proven-safe site with %s)",
						pass.Pkg.Name(), suppressOrdered)
				}
			}
			return true
		})
	}
}

// globalRandFunc reports whether obj is a math/rand (or math/rand/v2)
// package-level function that draws from the shared global source.
// Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) build
// caller-owned seeded generators and are allowed.
func globalRandFunc(obj *types.Func) bool {
	pkg := obj.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // methods on *rand.Rand et al. use caller-owned state
	}
	return !strings.HasPrefix(obj.Name(), "New")
}
