package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapshotComplete makes "new struct field without a codec change" a build
// failure instead of a silent determinism bug. Codec functions declare the
// struct types they serialize:
//
//	//eagletree:snapshot encode flash.ArrayState flash.BlockMeta
//	func (e *enc) array(a *flash.ArrayState) { ... }
//
// For every declared type, every field must be referenced (a field selector,
// or a composite-literal key) by at least one encode-annotated function AND
// at least one decode-annotated function in the package. A field that is
// deliberately not serialized is excluded inline: `T[-Transient]`.
//
// The check is per package: the snapshot codec sees foreign state structs
// through their exported fields, which is exactly the set it can serialize.
var SnapshotComplete = &Analyzer{
	Name: "snapshotcomplete",
	Doc:  "every field of a snapshot-serialized struct must be touched by both its encode and decode paths",
	Run:  runSnapshotComplete,
}

// snapshotDecl is one `//eagletree:snapshot side T...` annotation target.
type snapshotDecl struct {
	fn      *ast.FuncDecl
	typ     *types.Named
	skipped map[string]bool // fields excluded via T[-Field]
}

func runSnapshotComplete(pass *Pass) {
	var encodes, decodes []snapshotDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, args := range funcDirectives(fd, directiveSnapshot) {
				if len(args) < 2 {
					pass.Reportf(fd.Pos(), "malformed %s directive: want 'encode|decode Type...'", directiveSnapshot)
					continue
				}
				side := args[0]
				if side != "encode" && side != "decode" {
					pass.Reportf(fd.Pos(), "malformed %s directive: side %q, want encode or decode", directiveSnapshot, side)
					continue
				}
				for _, spec := range args[1:] {
					d, err := resolveSnapshotType(pass, f, fd, spec)
					if err != "" {
						pass.Reportf(fd.Pos(), "%s", err)
						continue
					}
					if side == "encode" {
						encodes = append(encodes, d)
					} else {
						decodes = append(decodes, d)
					}
				}
			}
		}
	}
	if len(encodes) == 0 && len(decodes) == 0 {
		return
	}

	encCover := coverage(pass, encodes)
	decCover := coverage(pass, decodes)
	checkSides(pass, encodes, decCover, "decode")
	checkSides(pass, decodes, encCover, "encode")
	reportMissing(pass, encodes, encCover, "encode")
	reportMissing(pass, decodes, decCover, "decode")
}

// resolveSnapshotType parses one "pkg.Type[-Skip,-Skip2]" spec against the
// file's imports and the package scope.
func resolveSnapshotType(pass *Pass, f *ast.File, fd *ast.FuncDecl, spec string) (snapshotDecl, string) {
	d := snapshotDecl{fn: fd, skipped: map[string]bool{}}
	name := spec
	if i := strings.IndexByte(spec, '['); i >= 0 {
		if !strings.HasSuffix(spec, "]") {
			return d, "malformed snapshot type " + spec + ": unterminated field exclusion"
		}
		name = spec[:i]
		for _, ex := range strings.Split(spec[i+1:len(spec)-1], ",") {
			ex = strings.TrimSpace(ex)
			if !strings.HasPrefix(ex, "-") {
				return d, "malformed snapshot field exclusion " + ex + ": want -Field"
			}
			d.skipped[ex[1:]] = true
		}
	}

	var obj types.Object
	if pkgName, typeName, ok := strings.Cut(name, "."); ok {
		imported := importedPackage(pass, f, pkgName)
		if imported == nil {
			return d, "snapshot type " + name + ": package " + pkgName + " is not imported in this file"
		}
		obj = imported.Scope().Lookup(typeName)
	} else {
		obj = pass.Pkg.Scope().Lookup(name)
	}
	if obj == nil {
		return d, "snapshot type " + name + ": not found"
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return d, "snapshot type " + name + ": not a named type"
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return d, "snapshot type " + name + ": not a struct"
	}
	d.typ = named
	return d, ""
}

// importedPackage finds the imported package the file refers to as pkgName.
func importedPackage(pass *Pass, f *ast.File, pkgName string) *types.Package {
	for _, imp := range f.Imports {
		var obj types.Object
		if imp.Name != nil {
			obj = pass.Info.Defs[imp.Name]
		} else {
			obj = pass.Info.Implicits[imp]
		}
		if pn, ok := obj.(*types.PkgName); ok && pn.Name() == pkgName {
			return pn.Imported()
		}
	}
	return nil
}

// coverage computes, for each annotated type, the set of its fields that the
// annotated functions reference — through field selectors (reads, writes,
// &f.X) or composite-literal keys. An unkeyed composite literal covers every
// field by construction.
func coverage(pass *Pass, decls []snapshotDecl) map[*types.Named]map[string]bool {
	byType := map[*types.Named]map[string]bool{}
	fields := map[*types.Named]map[*types.Var]string{}
	for _, d := range decls {
		if byType[d.typ] == nil {
			byType[d.typ] = map[string]bool{}
			fields[d.typ] = map[*types.Var]string{}
			st := d.typ.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				fields[d.typ][st.Field(i)] = st.Field(i).Name()
			}
		}
	}
	// References are credited to every tracked type on the side, whichever
	// annotated function they appear in: nested-state fields are naturally
	// touched by the parent codec function. Inspect each function once.
	seenFn := map[*ast.FuncDecl]bool{}
	for _, d := range decls {
		if seenFn[d.fn] {
			continue
		}
		seenFn[d.fn] = true
		ast.Inspect(d.fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				for typ, fs := range fields {
					if name, ok := fs[sel.Obj().(*types.Var)]; ok {
						byType[typ][name] = true
					}
				}
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil {
					return true
				}
				cover2, tracked := byType[named]
				if !tracked {
					return true
				}
				if len(n.Elts) > 0 {
					if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
						// Positional literals must list every field.
						st := named.Underlying().(*types.Struct)
						for i := 0; i < st.NumFields(); i++ {
							cover2[st.Field(i).Name()] = true
						}
						return true
					}
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := ast.Unparen(kv.Key).(*ast.Ident); ok {
						cover2[key.Name] = true
					}
				}
			}
			return true
		})
	}
	return byType
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// checkSides reports types annotated on one side with no codec on the other.
func checkSides(pass *Pass, decls []snapshotDecl, other map[*types.Named]map[string]bool, otherName string) {
	seen := map[*types.Named]bool{}
	for _, d := range decls {
		if seen[d.typ] {
			continue
		}
		seen[d.typ] = true
		if _, ok := other[d.typ]; !ok {
			pass.Reportf(d.fn.Pos(), "snapshot type %s has no %s path: annotate its %s function with %s %s %s",
				typeName(pass, d.typ), otherName, otherName, directiveSnapshot, otherName, typeName(pass, d.typ))
		}
	}
}

// reportMissing flags fields of each annotated type that no function on the
// side references, honoring per-declaration exclusions.
func reportMissing(pass *Pass, decls []snapshotDecl, cover map[*types.Named]map[string]bool, side string) {
	// A field excluded by any declaration of the type is excluded for the
	// type: exclusions are written once, at the primary codec function.
	skipped := map[*types.Named]map[string]bool{}
	first := map[*types.Named]*ast.FuncDecl{}
	for _, d := range decls {
		if skipped[d.typ] == nil {
			skipped[d.typ] = map[string]bool{}
			first[d.typ] = d.fn
		}
		for f := range d.skipped {
			skipped[d.typ][f] = true
		}
	}
	for typ, cov := range cover {
		st := typ.Underlying().(*types.Struct)
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			name := st.Field(i).Name()
			if !cov[name] && !skipped[typ][name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pass.Reportf(first[typ].Pos(), "snapshot %s path for %s misses field(s) %s: serialize them or exclude with %s[-%s]",
			side, typeName(pass, typ), strings.Join(missing, ", "), typeName(pass, typ), strings.Join(missing, ",-"))
	}
}

// typeName renders a type relative to the analyzed package.
func typeName(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
