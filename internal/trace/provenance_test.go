package trace

import (
	"path/filepath"
	"testing"

	"eagletree/internal/iface"
)

func provenanceSample() *Trace {
	return &Trace{Records: []Record{
		{At: 0, Thread: 1, Op: iface.Write, LPN: 10, Size: 1},
		{At: 150, Thread: 1, Op: iface.Read, LPN: 10, Size: 1, Tags: iface.Tags{Priority: iface.PriorityHigh}},
		{At: 400, Thread: 2, Op: iface.Trim, LPN: 64, Size: 2},
	}}
}

// TestHashFormatIndependent: the content hash identifies the logical stream,
// so the same trace stored as text and as binary — and re-decoded from
// either — hashes identically.
func TestHashFormatIndependent(t *testing.T) {
	tr := provenanceSample()
	want, err := tr.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", want)
	}
	dir := t.TempDir()
	for _, name := range []string{"sample.txt", "sample.etb"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		h, err := got.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != want {
			t.Fatalf("%s round trip changed the hash: %s != %s", name, h, want)
		}
	}
}

// TestHashDetectsEdits: any change to the stream changes the hash.
func TestHashDetectsEdits(t *testing.T) {
	base, err := provenanceSample().Hash()
	if err != nil {
		t.Fatal(err)
	}
	edited := provenanceSample()
	edited.Records[1].LPN++
	h, err := edited.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h == base {
		t.Fatal("editing a record did not change the content hash")
	}
}
