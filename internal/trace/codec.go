package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// ErrFormat wraps every malformed-input failure in the text and binary
// trace decoders, distinguishing bad bytes from I/O errors.
var ErrFormat = errors.New("trace: malformed trace")

// textHeader is the first line of the versioned text form.
const textHeader = "eagletree-trace v1"

// binaryMagic opens the binary form, followed by one version byte.
var binaryMagic = []byte("ETRC")

// binaryVersion is the current binary codec version.
const binaryVersion = 1

// opLetter maps request types to their single-letter text encoding.
func opLetter(t iface.ReqType) byte {
	switch t {
	case iface.Read:
		return 'R'
	case iface.Write:
		return 'W'
	default:
		return 'T'
	}
}

// opFromLetter is the inverse of opLetter.
func opFromLetter(b byte) (iface.ReqType, bool) {
	switch b {
	case 'R':
		return iface.Read, true
	case 'W':
		return iface.Write, true
	case 'T':
		return iface.Trim, true
	default:
		return 0, false
	}
}

// EncodeText writes the trace in the versioned text form: a header line, a
// column comment, then one record per line as
// "at_ns thread op lpn size prio locality temp".
func EncodeText(w io.Writer, t *Trace) error {
	if err := t.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, textHeader)
	fmt.Fprintln(bw, "# at_ns thread op lpn size prio locality temp")
	for _, r := range t.Records {
		fmt.Fprintf(bw, "%d %d %c %d %d %d %d %d\n",
			int64(r.At), r.Thread, opLetter(r.Op), int64(r.LPN), r.Size,
			int(r.Tags.Priority), r.Tags.Locality, int(r.Tags.Temperature))
	}
	return bw.Flush()
}

// DecodeText parses the versioned text form. Blank lines and # comments are
// skipped; any malformed line is an error naming its line number.
func DecodeText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	sawHeader := false
	t := &Trace{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text != textHeader {
				return nil, fmt.Errorf("%w: line %d: bad header %q, want %q", ErrFormat, line, text, textHeader)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 8 {
			return nil, fmt.Errorf("%w: line %d: %d fields, want 8", ErrFormat, line, len(fields))
		}
		ints := make([]int64, 8)
		for i, f := range fields {
			if i == 2 {
				continue // op letter
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: field %d: %v", ErrFormat, line, i+1, err)
			}
			ints[i] = v
		}
		if len(fields[2]) != 1 {
			return nil, fmt.Errorf("%w: line %d: bad op %q", ErrFormat, line, fields[2])
		}
		op, ok := opFromLetter(fields[2][0])
		if !ok {
			return nil, fmt.Errorf("%w: line %d: bad op %q", ErrFormat, line, fields[2])
		}
		t.Records = append(t.Records, Record{
			At:     sim.Time(ints[0]),
			Thread: int(ints[1]),
			Op:     op,
			LPN:    iface.LPN(ints[3]),
			Size:   int(ints[4]),
			Tags: iface.Tags{
				Priority:    iface.Priority(ints[5]),
				Locality:    int(ints[6]),
				Temperature: iface.Temperature(ints[7]),
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: missing %q header", ErrFormat, textHeader)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// zigzag folds a signed value into an unsigned varint-friendly one.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeBinary writes the compact binary form: magic, version, record count,
// then per record delta-encoded varints (timestamp deltas are monotone, LPN
// deltas zigzagged), the op and temperature as single bytes.
func EncodeBinary(w io.Writer, t *Trace) error {
	if err := t.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(binaryMagic)
	bw.WriteByte(binaryVersion)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putUvarint(uint64(len(t.Records)))
	var prevAt sim.Time
	var prevLPN iface.LPN
	for _, r := range t.Records {
		putUvarint(uint64(r.At - prevAt))
		prevAt = r.At
		putUvarint(uint64(r.Thread))
		bw.WriteByte(opLetter(r.Op))
		putUvarint(zigzag(int64(r.LPN - prevLPN)))
		prevLPN = r.LPN
		putUvarint(uint64(r.Size))
		putUvarint(zigzag(int64(r.Tags.Priority)))
		putUvarint(zigzag(int64(r.Tags.Locality)))
		bw.WriteByte(byte(r.Tags.Temperature))
	}
	return bw.Flush()
}

// DecodeBinary parses the compact binary form.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(binaryMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if !bytes.Equal(head[:len(binaryMagic)], binaryMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(binaryMagic)])
	}
	if head[len(binaryMagic)] != binaryVersion {
		return nil, fmt.Errorf("%w: binary version %d, want %d", ErrFormat, head[len(binaryMagic)], binaryVersion)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: record count: %w", err)
	}
	const maxRecords = 1 << 30 // refuse absurd counts from corrupt input
	if count > maxRecords {
		return nil, fmt.Errorf("%w: record count %d too large", ErrFormat, count)
	}
	t := &Trace{Records: make([]Record, 0, count)}
	var prevAt sim.Time
	var prevLPN iface.LPN
	for i := uint64(0); i < count; i++ {
		fail := func(field string, err error) (*Trace, error) {
			return nil, fmt.Errorf("trace: record %d: %s: %w", i, field, err)
		}
		dAt, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("timestamp", err)
		}
		thread, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("thread", err)
		}
		opb, err := br.ReadByte()
		if err != nil {
			return fail("op", err)
		}
		op, ok := opFromLetter(opb)
		if !ok {
			return nil, fmt.Errorf("%w: record %d: bad op byte %q", ErrFormat, i, opb)
		}
		dLPN, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("lpn", err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("size", err)
		}
		prio, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("priority", err)
		}
		loc, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("locality", err)
		}
		temp, err := br.ReadByte()
		if err != nil {
			return fail("temperature", err)
		}
		prevAt += sim.Time(dAt)
		prevLPN += iface.LPN(unzigzag(dLPN))
		t.Records = append(t.Records, Record{
			At:     prevAt,
			Thread: int(thread),
			Op:     op,
			LPN:    prevLPN,
			Size:   int(size),
			Tags: iface.Tags{
				Priority:    iface.Priority(unzigzag(prio)),
				Locality:    int(unzigzag(loc)),
				Temperature: iface.Temperature(temp),
			},
		})
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Decode sniffs the format (binary magic vs text header) and parses either.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if bytes.Equal(head, binaryMagic) {
		return DecodeBinary(br)
	}
	return DecodeText(br)
}

// WriteFile encodes the trace to path: binary when the name ends in .etb,
// the text form otherwise.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := EncodeText
	if strings.HasSuffix(path, ".etb") {
		enc = EncodeBinary
	}
	if err := enc(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a trace from path, sniffing the format.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
