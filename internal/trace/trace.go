// Package trace defines EagleTree's canonical block-trace format: a portable
// record of an application-level IO stream, captured from any run at the OS
// scheduler layer or converted from external block traces, and replayed
// through the stack by workload.Replay.
//
// A trace is an ordered sequence of records, each carrying the submission
// timestamp (relative to the capture origin), the dispatching thread, the
// operation, the logical page address, a size in pages, and the request's
// open-interface tags. Two codecs serialize it: a human-readable versioned
// text form and a compact delta/varint binary form (see codec.go); both
// round-trip exactly.
//
//eagletree:canonical
//eagletree:typederrors
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Record is one traced IO.
type Record struct {
	// At is the submission time relative to the trace origin.
	At sim.Time
	// Thread is the dispatching thread in the captured run.
	Thread int
	// Op is the request type (Read, Write or Trim; Erase never crosses the
	// block interface and is rejected by the codecs).
	Op iface.ReqType
	// LPN is the first logical page the IO touches.
	LPN iface.LPN
	// Size is the IO length in pages (>= 1). Captured runs record 1;
	// converted external traces may carry multi-page requests, which Replay
	// expands into consecutive page IOs.
	Size int
	// Tags is the open-interface metadata the request carried.
	Tags iface.Tags
}

func (r Record) String() string {
	return fmt.Sprintf("%v thr=%d %v lpn=%d size=%d", r.At, r.Thread, r.Op, r.LPN, r.Size)
}

// validate reports whether the record can appear in a canonical trace.
func (r Record) validate() error {
	switch r.Op {
	case iface.Read, iface.Write, iface.Trim:
	default:
		return fmt.Errorf("trace: op %v cannot cross the block interface", r.Op)
	}
	if r.Size < 1 {
		return fmt.Errorf("trace: size %d, must be >= 1", r.Size)
	}
	if r.At < 0 {
		return fmt.Errorf("trace: negative timestamp %v", r.At)
	}
	return nil
}

// Trace is an ordered application-level IO stream.
type Trace struct {
	Records []Record
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Pages returns the total IO volume in pages.
func (t *Trace) Pages() int64 {
	var n int64
	for _, r := range t.Records {
		n += int64(r.Size)
	}
	return n
}

// Duration returns the span from the origin to the last submission.
func (t *Trace) Duration() sim.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return sim.Duration(t.Records[len(t.Records)-1].At)
}

// Threads returns the distinct thread ids appearing in the trace, in order
// of first appearance.
func (t *Trace) Threads() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range t.Records {
		if !seen[r.Thread] {
			seen[r.Thread] = true
			out = append(out, r.Thread)
		}
	}
	return out
}

// FilterThread returns a new trace holding only one thread's records, with
// timestamps left on the shared origin so per-thread replays stay aligned.
func (t *Trace) FilterThread(id int) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if r.Thread == id {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Hash returns the trace's content hash: hex SHA-256 over the canonical
// binary encoding, streamed straight into the hash (no materialized copy).
// It identifies the logical IO stream, not a file — the same trace stored
// as text and as binary hashes identically — so specs can pin the exact
// stream a replay must consume (see MismatchError).
func (t *Trace) Hash() (string, error) {
	h := sha256.New()
	if err := EncodeBinary(h, t); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MismatchError reports a replayed trace whose content hash does not match
// the provenance its spec pinned: the file was edited, regenerated under a
// different configuration, or simply isn't the capture the document was
// written against.
type MismatchError struct {
	// Path is the trace file that was loaded.
	Path string
	// Want is the content hash the spec pinned.
	Want string
	// Got is the loaded trace's content hash.
	Got string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("trace: %s: content hash %s does not match the spec's pinned provenance %s (the file is not the capture this document was written against)",
		e.Path, e.Got, e.Want)
}

// validate checks every record and the timestamp ordering.
func (t *Trace) validate() error {
	last := sim.Time(0)
	for i, r := range t.Records {
		if err := r.validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if r.At < last {
			return fmt.Errorf("record %d: timestamp %v before predecessor %v", i, r.At, last)
		}
		last = r.At
	}
	return nil
}

// Capture records the app-level IO stream of a live run. Wire it to the OS
// scheduler via osched.Config.Capture; every submission is appended as one
// record with its timestamp rebased to the capture origin. A fresh Capture
// is active with origin 0; Stop and Start gate it around device preparation
// so only the measured workload is recorded.
type Capture struct {
	active bool
	origin sim.Time
	recs   []Record
}

// NewCapture returns an active capture with origin 0.
func NewCapture() *Capture { return &Capture{active: true} }

// Start (re)enables recording and rebases timestamps to at. Call it from a
// barrier thread so preparation traffic stays out of the trace.
func (c *Capture) Start(at sim.Time) {
	c.active = true
	c.origin = at
}

// Stop disables recording; already-captured records are kept.
func (c *Capture) Stop() { c.active = false }

// Active reports whether submissions are currently being recorded.
func (c *Capture) Active() bool { return c.active }

// Len returns how many records have been captured.
func (c *Capture) Len() int { return len(c.recs) }

// Submitted records one request submission. It implements osched.Capture.
// Timestamps are kept monotone even across Stop/Start windows whose origin
// rebasing would step backwards, so a capture always yields an encodable
// trace.
func (c *Capture) Submitted(at sim.Time, r *iface.Request) {
	if !c.active {
		return
	}
	rel := at - c.origin
	if rel < 0 {
		rel = 0
	}
	if n := len(c.recs); n > 0 && rel < c.recs[n-1].At {
		rel = c.recs[n-1].At
	}
	c.recs = append(c.recs, Record{
		At:     rel,
		Thread: r.Thread,
		Op:     r.Type,
		LPN:    r.LPN,
		Size:   1,
		Tags:   r.Tags,
	})
}

// Trace returns a copy of everything captured so far.
func (c *Capture) Trace() *Trace {
	out := make([]Record, len(c.recs))
	copy(out, c.recs)
	return &Trace{Records: out}
}
