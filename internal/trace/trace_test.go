package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{Records: []Record{
		{At: 0, Thread: 2, Op: iface.Write, LPN: 100, Size: 1},
		{At: 1500, Thread: 2, Op: iface.Read, LPN: 99, Size: 1,
			Tags: iface.Tags{Priority: iface.PriorityHigh}},
		{At: 1500, Thread: 3, Op: iface.Trim, LPN: 4096, Size: 8,
			Tags: iface.Tags{Priority: iface.PriorityLow, Locality: 7, Temperature: iface.TempHot}},
		{At: 90_000, Thread: 0, Op: iface.Write, LPN: 0, Size: 2,
			Tags: iface.Tags{Temperature: iface.TempCold}},
	}}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("text round trip:\nin:  %+v\nout: %+v", tr, got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("binary round trip:\nin:  %+v\nout: %+v", tr, got)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 1000; i++ {
		tr.Records = append(tr.Records, Record{
			At: sim.Time(i * 1000), Thread: 1, Op: iface.Write,
			LPN: iface.LPN(i * 17 % 4096), Size: 1,
		})
	}
	var text, bin bytes.Buffer
	if err := EncodeText(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Fatalf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
}

func TestDecodeSniffsFormat(t *testing.T) {
	tr := sampleTrace()
	for _, enc := range []func(*bytes.Buffer){
		func(b *bytes.Buffer) { EncodeText(b, tr) },
		func(b *bytes.Buffer) { EncodeBinary(b, tr) },
	} {
		var buf bytes.Buffer
		enc(&buf)
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("sniffed decode mismatch: %+v", got)
		}
	}
}

func TestDecodeTextErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":  "0 1 W 2 1 0 0 0\n",
		"wrong header":    "eagletree-trace v99\n",
		"short line":      "eagletree-trace v1\n0 1 W 2\n",
		"bad op":          "eagletree-trace v1\n0 1 X 2 1 0 0 0\n",
		"long op":         "eagletree-trace v1\n0 1 WW 2 1 0 0 0\n",
		"bad number":      "eagletree-trace v1\n0 1 W two 1 0 0 0\n",
		"zero size":       "eagletree-trace v1\n0 1 W 2 0 0 0 0\n",
		"time regression": "eagletree-trace v1\n100 1 W 2 1 0 0 0\n50 1 W 2 1 0 0 0\n",
		"empty input":     "",
	}
	for name, in := range cases {
		if _, err := DecodeText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	var good bytes.Buffer
	if err := EncodeBinary(&good, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01"),
		"bad version": append(append([]byte{}, binaryMagic...),
			99),
		"truncated header": full[:3],
		"truncated body":   full[:len(full)-2],
	}
	// A corrupted op byte inside the stream must surface as an error, not a
	// bogus record. The op of record 0 sits right after magic+version+count+
	// deltaAt+thread; find it by searching for the first 'W'.
	corrupt := append([]byte{}, full...)
	corrupt[bytes.IndexByte(corrupt, 'W')] = 'Z'
	cases["bad op byte"] = corrupt

	for name, in := range cases {
		if _, err := DecodeBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := []*Trace{
		{Records: []Record{{At: 0, Op: iface.Erase, Size: 1}}},
		{Records: []Record{{At: 0, Op: iface.Read, Size: 0}}},
		{Records: []Record{{At: -1, Op: iface.Read, Size: 1}}},
		{Records: []Record{
			{At: 10, Op: iface.Read, Size: 1},
			{At: 5, Op: iface.Read, Size: 1},
		}},
	}
	for i, tr := range bad {
		var buf bytes.Buffer
		if err := EncodeText(&buf, tr); err == nil {
			t.Errorf("case %d: text encode accepted invalid trace", i)
		}
		if err := EncodeBinary(&buf, tr); err == nil {
			t.Errorf("case %d: binary encode accepted invalid trace", i)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	tr := sampleTrace()
	dir := t.TempDir()
	for _, name := range []string{"t.trace", "t.etb"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("%s: file round trip mismatch", name)
		}
	}
}

func TestCaptureGating(t *testing.T) {
	c := NewCapture()
	req := &iface.Request{Type: iface.Write, LPN: 5, Thread: 1}
	c.Submitted(100, req)
	c.Stop()
	c.Submitted(200, req) // ignored
	c.Start(1000)
	c.Submitted(1400, req)
	c.Submitted(900, req) // before the new origin: clamped, kept monotone

	tr := c.Trace()
	if tr.Len() != 3 {
		t.Fatalf("captured %d records, want 3", tr.Len())
	}
	if tr.Records[0].At != 100 {
		t.Errorf("pre-gate record at %v, want 100", tr.Records[0].At)
	}
	if tr.Records[1].At != 400 {
		t.Errorf("rebased record at %v, want 400", tr.Records[1].At)
	}
	if tr.Records[2].At != 400 {
		t.Errorf("pre-origin record at %v, want 400 (monotone clamp)", tr.Records[2].At)
	}
	// Whatever Stop/Start windowing produced, a capture must always yield an
	// encodable trace.
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatalf("captured trace not encodable: %v", err)
	}
}

// TestCaptureRebaseStaysMonotone covers the multi-window case where Start's
// origin rebase would otherwise step timestamps backwards below records from
// an earlier window.
func TestCaptureRebaseStaysMonotone(t *testing.T) {
	c := NewCapture()
	req := &iface.Request{Type: iface.Write, LPN: 1}
	c.Submitted(5000, req) // first window, origin 0: At 5000
	c.Stop()
	c.Start(10_000)
	c.Submitted(10_100, req) // would rebase to 100, must clamp to 5000
	c.Submitted(16_000, req) // rebases to 6000, past the clamp again
	tr := c.Trace()
	want := []sim.Time{5000, 5000, 6000}
	for i, r := range tr.Records {
		if r.At != want[i] {
			t.Fatalf("record %d at %v, want %v", i, r.At, want[i])
		}
	}
	var buf bytes.Buffer
	if err := EncodeText(&buf, tr); err != nil {
		t.Fatalf("captured trace not encodable: %v", err)
	}
}

func TestCaptureTraceIsACopy(t *testing.T) {
	c := NewCapture()
	c.Submitted(1, &iface.Request{Type: iface.Read, LPN: 1})
	tr := c.Trace()
	c.Submitted(2, &iface.Request{Type: iface.Read, LPN: 2})
	if tr.Len() != 1 {
		t.Fatal("snapshot grew after later captures")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Pages() != 12 {
		t.Fatalf("Pages = %d, want 12", tr.Pages())
	}
	if tr.Duration() != 90_000 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if got := tr.Threads(); !reflect.DeepEqual(got, []int{2, 3, 0}) {
		t.Fatalf("Threads = %v", got)
	}
	sub := tr.FilterThread(2)
	if sub.Len() != 2 || sub.Records[1].Op != iface.Read {
		t.Fatalf("FilterThread: %+v", sub.Records)
	}
}
