package gc

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/sim"
)

func gcGeo() flash.Geometry {
	return flash.Geometry{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 8, PagesPerBlock: 4, PageSize: 4096}
}

// fillBlocks writes whole blocks through the manager and invalidates
// `stale[i]` pages of the i-th filled block, returning the block IDs.
func fillBlocks(t *testing.T, a *flash.Array, bm *ftl.BlockManager, stale []int) []flash.BlockID {
	t.Helper()
	g := a.Geometry()
	var blocks []flash.BlockID
	for _, nStale := range stale {
		var ppas []flash.PPA
		for p := 0; p < g.PagesPerBlock; p++ {
			ppa, err := bm.Alloc(0, ftl.StreamGC) // internal stream: ignores reserve
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.ScheduleWrite(ppa, 0); err != nil {
				t.Fatal(err)
			}
			ppas = append(ppas, ppa)
		}
		for i := 0; i < nStale; i++ {
			if err := a.Invalidate(ppas[i]); err != nil {
				t.Fatal(err)
			}
		}
		blocks = append(blocks, ppas[0].BlockOf())
	}
	return blocks
}

func TestGreedyPicksFewestLive(t *testing.T) {
	a := flash.NewArray(gcGeo(), flash.TimingSLC(), flash.Features{})
	bm := ftl.NewBlockManager(a, 0, 1, false)
	blocks := fillBlocks(t, a, bm, []int{1, 3, 2}) // live pages: 3, 1, 2
	c := NewCollector(bm, Greedy{}, 2)
	victim, ok := c.SelectVictim(0, 0)
	if !ok {
		t.Fatal("no victim selected")
	}
	if victim != blocks[1] {
		t.Fatalf("victim = %v, want %v (fewest live pages)", victim, blocks[1])
	}
	if c.Triggered(0) != 1 {
		t.Fatalf("Triggered = %d", c.Triggered(0))
	}
}

func TestGreedyRefusesFullyLiveVictims(t *testing.T) {
	a := flash.NewArray(gcGeo(), flash.TimingSLC(), flash.Features{})
	bm := ftl.NewBlockManager(a, 0, 1, false)
	fillBlocks(t, a, bm, []int{0, 0}) // all pages live
	c := NewCollector(bm, Greedy{}, 2)
	if _, ok := c.SelectVictim(0, 0); ok {
		t.Fatal("selected a victim with zero reclaimable pages")
	}
}

func TestShouldCollectFollowsGreediness(t *testing.T) {
	g := gcGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	bm := ftl.NewBlockManager(a, 0, 1, false)
	c := NewCollector(bm, Greedy{}, 3)
	if c.ShouldCollect(0) {
		t.Fatal("fresh LUN flagged for collection")
	}
	// Consume blocks until fewer than 3 free.
	fillBlocks(t, a, bm, []int{0, 0, 0, 0, 0, 0}) // 6 of 8 blocks
	if !c.ShouldCollect(0) {
		t.Fatalf("2 free blocks with greediness 3 not flagged (free=%d)", bm.FreeCount(0))
	}
	if c.Greediness() != 3 {
		t.Fatalf("Greediness = %d", c.Greediness())
	}
}

func TestCostBenefitPrefersOldStale(t *testing.T) {
	g := gcGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	bm := ftl.NewBlockManager(a, 0, 1, false)
	blocks := fillBlocks(t, a, bm, []int{2, 2})
	// Erase-cycle block 0 so its LastErase is recent; block 1 keeps
	// LastErase 0 (older age -> higher cost-benefit score).
	// Equal utilization, so age decides.
	now := sim.Time(1_000_000)
	cands := []Candidate{
		{Block: blocks[0], Meta: flash.BlockMeta{ValidPages: 2, LastErase: 900_000, WritePtr: 4}},
		{Block: blocks[1], Meta: flash.BlockMeta{ValidPages: 2, LastErase: 0, WritePtr: 4}},
	}
	idx, ok := CostBenefit{}.Pick(cands, now, g.PagesPerBlock)
	if !ok || idx != 1 {
		t.Fatalf("cost-benefit picked %d (ok=%v), want 1 (older block)", idx, ok)
	}
}

func TestCostBenefitPrefersEmptyOverPartial(t *testing.T) {
	g := gcGeo()
	cands := []Candidate{
		{Meta: flash.BlockMeta{ValidPages: 1, LastErase: 0, WritePtr: 4}},
		{Meta: flash.BlockMeta{ValidPages: 0, LastErase: 0, WritePtr: 4}},
	}
	idx, ok := CostBenefit{}.Pick(cands, 1000, g.PagesPerBlock)
	if !ok || idx != 1 {
		t.Fatalf("picked %d, want 1 (zero live pages)", idx)
	}
}

func TestCostBenefitRefusesAllLive(t *testing.T) {
	g := gcGeo()
	cands := []Candidate{
		{Meta: flash.BlockMeta{ValidPages: 4, WritePtr: 4}},
	}
	if _, ok := (CostBenefit{}).Pick(cands, 1000, g.PagesPerBlock); ok {
		t.Fatal("cost-benefit collected a fully live block")
	}
}

func TestRandomPolicyOnlyPicksEligible(t *testing.T) {
	g := gcGeo()
	r := Random{RNG: sim.NewRNG(1)}
	cands := []Candidate{
		{Meta: flash.BlockMeta{ValidPages: 4, WritePtr: 4}}, // full live
		{Meta: flash.BlockMeta{ValidPages: 1, WritePtr: 4}},
		{Meta: flash.BlockMeta{ValidPages: 4, WritePtr: 4}}, // full live
	}
	for i := 0; i < 50; i++ {
		idx, ok := r.Pick(cands, 0, g.PagesPerBlock)
		if !ok {
			t.Fatal("no victim")
		}
		if idx != 1 {
			t.Fatalf("random policy picked fully live candidate %d", idx)
		}
	}
	if _, ok := r.Pick(cands[:1], 0, g.PagesPerBlock); ok {
		t.Fatal("random policy picked among all-live candidates")
	}
}

func TestPolicyNames(t *testing.T) {
	if (Greedy{}).Name() != "greedy" || (CostBenefit{}).Name() != "costbenefit" || (&Random{}).Name() != "random" {
		t.Error("policy names wrong")
	}
}

func TestNewCollectorPanicsOnBadGreediness(t *testing.T) {
	a := flash.NewArray(gcGeo(), flash.TimingSLC(), flash.Features{})
	bm := ftl.NewBlockManager(a, 0, 1, false)
	defer func() {
		if recover() == nil {
			t.Error("greediness 0 accepted")
		}
	}()
	NewCollector(bm, Greedy{}, 0)
}
