// Package gc implements garbage collection policy for page-mapped FTLs:
// when to trigger collection and which victim block to reclaim.
//
// Following the paper's default module, collection is governed by a
// *greediness* parameter: the controller strives to keep a given number of
// blocks free on every LUN. Waiting as long as possible maximizes the number
// of invalid pages across the SSD (victims carry fewer live pages), but
// waiting too long starves incoming writes; keeping free space on every LUN
// preserves scheduling flexibility for writes. The greediness knob trades
// these off, and experiment E3 sweeps it.
//
// The package decides; the controller executes. Migration and erase IOs are
// issued by the controller through the same scheduler queue as application
// IOs, which is how GC interference becomes visible in latency traces.
//
//eagletree:typederrors
package gc

import (
	"errors"
	"fmt"

	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/sim"
)

// ErrStateMismatch wraps every shape mismatch between a snapshot and the
// collector it is restored into.
var ErrStateMismatch = errors.New("gc: snapshot does not match collector shape")

// Candidate is a victim-eligible block with the metadata policies rank by.
type Candidate struct {
	Block flash.BlockID
	Meta  flash.BlockMeta
}

// VictimPolicy ranks victim candidates. Pick returns the index of the chosen
// candidate, or false if none is worth collecting. The cands slice is a
// scratch buffer owned by the caller, valid only for the duration of the
// call: implementations must not retain it.
type VictimPolicy interface {
	Name() string
	Pick(cands []Candidate, now sim.Time, pagesPerBlock int) (int, bool)
}

// Greedy picks the block with the fewest live pages: minimum migration cost
// per reclaimed block. This is the classic default.
type Greedy struct{}

// Name implements VictimPolicy.
func (Greedy) Name() string { return "greedy" }

// Pick implements VictimPolicy.
func (Greedy) Pick(cands []Candidate, _ sim.Time, pagesPerBlock int) (int, bool) {
	best, bestValid := -1, pagesPerBlock+1
	for i, c := range cands {
		if c.Meta.ValidPages < bestValid {
			best, bestValid = i, c.Meta.ValidPages
		}
	}
	if best < 0 || bestValid >= pagesPerBlock {
		// Every candidate is fully live: collecting would migrate a whole
		// block to reclaim nothing.
		return 0, false
	}
	return best, true
}

// CostBenefit implements the classic cost-benefit score
// (1-u)/(2u) * age: prefer blocks that are both mostly stale and have been
// stable for a while, sparing recently written blocks whose remaining live
// pages are likely to die soon anyway.
type CostBenefit struct{}

// Name implements VictimPolicy.
func (CostBenefit) Name() string { return "costbenefit" }

// Pick implements VictimPolicy.
func (CostBenefit) Pick(cands []Candidate, now sim.Time, pagesPerBlock int) (int, bool) {
	best, bestScore := -1, -1.0
	for i, c := range cands {
		u := float64(c.Meta.ValidPages) / float64(pagesPerBlock)
		if u >= 1 {
			continue
		}
		age := float64(now.Sub(c.Meta.LastErase)) + 1
		var score float64
		if u == 0 {
			score = age * 1e12 // free win: nothing to migrate
		} else {
			score = (1 - u) / (2 * u) * age
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Random picks a uniformly random victim with at least one stale page. It is
// the paper-style baseline that shows what victim selection buys.
type Random struct {
	// RNG is the victim-choice randomness source; nil means a fixed-seed
	// default, keeping simulations deterministic by construction.
	RNG *sim.RNG
}

// Name implements VictimPolicy.
func (*Random) Name() string { return "random" }

// Pick implements VictimPolicy.
func (r *Random) Pick(cands []Candidate, _ sim.Time, pagesPerBlock int) (int, bool) {
	if r.RNG == nil {
		r.RNG = sim.NewRNG(0xEA61E)
	}
	eligible := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.Meta.ValidPages < pagesPerBlock {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[r.RNG.Intn(len(eligible))], true
}

// isGreedy reports whether the policy is the default Greedy ranker (the
// spec layer constructs it by value, tests sometimes by pointer).
func isGreedy(p VictimPolicy) bool {
	switch p.(type) {
	case Greedy, *Greedy:
		return true
	}
	return false
}

// Collector decides when a LUN needs garbage collection and which block to
// reclaim, using the block manager's view of free space and victim
// candidates.
type Collector struct {
	bm         *ftl.BlockManager
	policy     VictimPolicy
	greediness int

	// Triggered counts collections started, per LUN, for reports.
	triggered []uint64

	scratch []Candidate // reused candidate buffer; SelectVictim runs per write completion at the free-space floor
}

// NewCollector builds a collector keeping `greediness` blocks free per LUN.
func NewCollector(bm *ftl.BlockManager, policy VictimPolicy, greediness int) *Collector {
	if greediness < 1 {
		panic(fmt.Sprintf("gc: greediness %d, must be >= 1", greediness))
	}
	return &Collector{
		bm:         bm,
		policy:     policy,
		greediness: greediness,
		triggered:  make([]uint64, bm.LUNs()),
	}
}

// Greediness returns the free-blocks-per-LUN target.
func (c *Collector) Greediness() int { return c.greediness }

// Policy returns the victim selection policy.
func (c *Collector) Policy() VictimPolicy { return c.policy }

// Triggered returns how many collections have started on a LUN.
func (c *Collector) Triggered(lun int) uint64 { return c.triggered[lun] }

// ShouldCollect reports whether the LUN has fallen to or below the
// free-block target. The threshold is inclusive: application writes stall
// once only the GC reserve (= greediness) blocks remain, so collection must
// fire exactly at the floor or the device would deadlock at greediness 1.
func (c *Collector) ShouldCollect(lun int) bool {
	return c.bm.FreeCount(lun) <= c.greediness
}

// CollectorState is the collector's serializable state for device snapshots:
// per-LUN trigger counts. Policy and greediness are configuration, rebuilt at
// restore time from the owning Config.
type CollectorState struct {
	Triggered []uint64
}

// State copies the collector's counters for a snapshot.
func (c *Collector) State() CollectorState {
	return CollectorState{Triggered: append([]uint64(nil), c.triggered...)}
}

// RestoreState overwrites the collector's counters with a snapshot.
func (c *Collector) RestoreState(st CollectorState) error {
	if len(st.Triggered) != len(c.triggered) {
		return fmt.Errorf("%w: snapshot has %d LUN trigger counts, collector has %d", ErrStateMismatch, len(st.Triggered), len(c.triggered))
	}
	copy(c.triggered, st.Triggered)
	return nil
}

// SelectVictim picks the block to reclaim on a LUN, or false if no candidate
// is worth collecting. A successful selection is counted as a triggered
// collection.
//
// Greedy's pick — minimum valid pages, ties toward the lowest block index,
// refuse fully-live blocks — is exactly what the block manager's bucketed
// min-tracker answers, so the default policy skips materializing the
// candidate list entirely; ranking policies that need age or randomness
// still receive the full scan.
func (c *Collector) SelectVictim(lun int, now sim.Time) (flash.BlockID, bool) {
	if isGreedy(c.policy) {
		b, _, ok := c.bm.MinValidVictim(lun)
		if !ok {
			return flash.BlockID{}, false
		}
		c.triggered[lun]++
		return b, true
	}
	cands := c.scratch[:0]
	c.bm.VictimCandidates(lun, func(b flash.BlockID, meta flash.BlockMeta) {
		cands = append(cands, Candidate{Block: b, Meta: meta})
	})
	c.scratch = cands[:0]
	if len(cands) == 0 {
		return flash.BlockID{}, false
	}
	idx, ok := c.policy.Pick(cands, now, c.bm.PagesPerBlock())
	if !ok {
		return flash.BlockID{}, false
	}
	c.triggered[lun]++
	return cands[idx].Block, true
}
