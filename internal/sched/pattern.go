package sched

import (
	"eagletree/internal/iface"
)

// Pattern classifies a request's logical address behavior.
type Pattern int

const (
	// PatternUnknown means not enough history to judge.
	PatternUnknown Pattern = iota
	// PatternSequential means the address continues a detected run.
	PatternSequential
	// PatternRandom means the address broke away from any run.
	PatternRandom
)

func (p Pattern) String() string {
	switch p {
	case PatternSequential:
		return "sequential"
	case PatternRandom:
		return "random"
	default:
		return "unknown"
	}
}

// PatternDetector records logical address patterns per thread — §2.2's
// "record and exploit information about logical address patterns". A thread
// whose consecutive writes continue an ascending run of at least MinRun
// pages is classified sequential; breaking the run resets it.
//
// The detector is deliberately per-thread: interleaved sequential streams
// from different threads look random in arrival order, which is exactly the
// information the block interface destroys and this recovers.
type PatternDetector struct {
	// MinRun is the run length at which a stream counts as sequential.
	// Zero means 8.
	MinRun int

	streams map[int]*runState
}

type runState struct {
	next   iface.LPN // expected next LPN to continue the run
	length int       // current run length
}

func (d *PatternDetector) minRun() int {
	if d.MinRun > 0 {
		return d.MinRun
	}
	return 8
}

// Observe ingests one request and returns its classification. The request
// extends its thread's run when it hits the expected next address.
func (d *PatternDetector) Observe(r *iface.Request) Pattern {
	if d.streams == nil {
		d.streams = make(map[int]*runState)
	}
	st := d.streams[r.Thread]
	if st == nil {
		st = &runState{}
		d.streams[r.Thread] = st
	}
	if st.length > 0 && r.LPN == st.next {
		st.length++
		st.next = r.LPN + 1
		if st.length >= d.minRun() {
			return PatternSequential
		}
		return PatternUnknown
	}
	wasRunning := st.length >= d.minRun()
	st.length = 1
	st.next = r.LPN + 1
	if wasRunning {
		return PatternRandom // just broke a real run
	}
	return PatternUnknown
}

// RunLength returns the thread's current run length (tests, reports).
func (d *PatternDetector) RunLength(thread int) int {
	if st := d.streams[thread]; st != nil {
		return st.length
	}
	return 0
}

// PatternAware is an Allocator that exploits detected address patterns:
// sequential runs are striped deterministically across LUNs (LPN-derived),
// so a later sequential read of the same range fans out over the whole
// array; random writes fall back to least-loaded placement.
//
// This is the paper's example of exploiting logical address patterns inside
// the controller, and the write-side mirror of read parallelism: striping
// costs nothing at write time (any idle LUN is as good as another) but
// determines which LUNs a future sequential scan can overlap.
type PatternAware struct {
	// Detector classifies requests; shared with whoever else consumes
	// pattern information. Required.
	Detector *PatternDetector
	fallback LeastLoaded
}

// Name implements Allocator.
func (*PatternAware) Name() string { return "pattern-aware" }

// PickLUN implements Allocator.
func (p *PatternAware) PickLUN(r *iface.Request, views []LUNView) (int, bool) {
	switch p.Detector.Observe(r) {
	case PatternSequential:
		lun := int(int64(r.LPN) % int64(len(views)))
		v := views[lun]
		if !v.Busy && v.CanAlloc {
			return lun, true
		}
		// The stripe target is busy: fall back rather than stall the run.
		return p.fallback.PickLUN(r, views)
	default:
		return p.fallback.PickLUN(r, views)
	}
}
