package sched

import (
	"testing"
	"testing/quick"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// policies under test, freshly constructed per property run.
func allPolicies() []Policy {
	return []Policy{
		&FIFO{},
		&Priority{Prefer: PreferReads},
		&Priority{Prefer: PreferWrites, Internal: InternalLast, UseTags: true},
		&Deadline{ReadDeadline: sim.Millisecond, WriteDeadline: 10 * sim.Millisecond},
		&Deadline{ReadDeadline: sim.Millisecond, Fallback: &Priority{Prefer: PreferReads}},
		&Deadline{ReadDeadline: sim.Millisecond, WriteDeadline: 10 * sim.Millisecond, MaxConsecutiveOverdue: 2},
		&Fair{},
	}
}

type reqSpec struct {
	Read     bool
	Internal bool
	Prio     bool
	Sub      uint16
}

func buildReq(id int, s reqSpec) *iface.Request {
	r := &iface.Request{ID: uint64(id + 1), Submitted: sim.Time(s.Sub)}
	if s.Read {
		r.Type = iface.Read
	} else {
		r.Type = iface.Write
	}
	if s.Internal {
		r.Source = iface.SourceGC
	}
	if s.Prio {
		r.Tags.Priority = iface.PriorityHigh
	}
	return r
}

// TestPoliciesConserveRequests: every pushed request is popped exactly once
// (when canRun always approves), regardless of policy and request mix.
func TestPoliciesConserveRequests(t *testing.T) {
	f := func(specs []reqSpec) bool {
		for _, p := range allPolicies() {
			seen := make(map[uint64]int)
			for i, s := range specs {
				p.Push(buildReq(i, s))
			}
			if p.Len() != len(specs) {
				t.Logf("%s: Len %d after %d pushes", p.Name(), p.Len(), len(specs))
				return false
			}
			for {
				r := p.Pop(sim.Time(1<<20), func(*iface.Request) bool { return true })
				if r == nil {
					break
				}
				seen[r.ID]++
			}
			if len(seen) != len(specs) {
				t.Logf("%s: popped %d of %d", p.Name(), len(seen), len(specs))
				return false
			}
			for id, n := range seen {
				if n != 1 {
					t.Logf("%s: request %d popped %d times", p.Name(), id, n)
					return false
				}
			}
			if p.Len() != 0 {
				t.Logf("%s: Len %d after draining", p.Name(), p.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPoliciesRespectCanRun: a request rejected by canRun is never popped,
// and Pop returns nil exactly when nothing runnable remains.
func TestPoliciesRespectCanRun(t *testing.T) {
	f := func(specs []reqSpec, mask uint64) bool {
		for _, p := range allPolicies() {
			blocked := make(map[uint64]bool)
			for i, s := range specs {
				r := buildReq(i, s)
				if mask&(1<<(uint(i)%64)) != 0 {
					blocked[r.ID] = true
				}
				p.Push(r)
			}
			canRun := func(r *iface.Request) bool { return !blocked[r.ID] }
			popped := 0
			for {
				r := p.Pop(sim.Time(1<<20), canRun)
				if r == nil {
					break
				}
				if blocked[r.ID] {
					t.Logf("%s popped a blocked request", p.Name())
					return false
				}
				popped++
			}
			if popped != len(specs)-len(blocked) {
				t.Logf("%s popped %d, want %d", p.Name(), popped, len(specs)-len(blocked))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineOverduePopOrder: once requests are overdue, Pop serves the
// earliest deadline among them.
func TestDeadlineOverduePopOrder(t *testing.T) {
	f := func(subs []uint8) bool {
		if len(subs) == 0 {
			return true
		}
		d := &Deadline{ReadDeadline: sim.Microsecond}
		for i, s := range subs {
			d.Push(&iface.Request{ID: uint64(i + 1), Type: iface.Read, Submitted: sim.Time(s)})
		}
		// At a time far past every deadline, pops must come out in
		// submission order (deadline = submitted + const).
		now := sim.Time(1 << 30)
		var last sim.Time = -1
		for {
			r := d.Pop(now, func(*iface.Request) bool { return true })
			if r == nil {
				break
			}
			if r.Submitted < last {
				return false
			}
			last = r.Submitted
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
