// Package sched is the SSD controller's IO scheduling framework — the
// central module of the simulator, as the paper puts it. Given the state of
// the flash array and a queue of pending IOs from various sources
// (application, garbage collection, wear leveling, mapping) of various types
// (read, write, erase, copyback) that have waited different lengths of time,
// a Policy decides which IO executes next, and an Allocator decides where
// (on which LUN) a write lands.
//
// Policies are deliberately small and composable so that the design space —
// priority schemes by source, type and tag; deadlines with overdue handling;
// fairness across sources — can be explored by swapping one value.
//
//eagletree:typederrors
package sched

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Policy orders the controller's pending IO queue. Push enqueues; Pop
// removes and returns the next request to dispatch among those for which
// canRun returns true, or nil if none is dispatchable.
//
// canRun encapsulates hardware and space constraints the policy cannot see:
// the target LUN of a read must be idle, a write needs some LUN with room,
// and translation dependencies must have drained.
type Policy interface {
	Name() string
	Push(r *iface.Request)
	// PushBlocked enqueues a request that is known to be undispatchable
	// until Unblock is called (a dependency-chain successor, a deferred
	// write). It keeps its arrival position but is invisible to Pop scans,
	// so long dependency chains cost nothing per dispatch tick.
	PushBlocked(r *iface.Request)
	// Unblock makes a previously PushBlocked request visible to Pop again,
	// at its original arrival position. Unknown requests are ignored.
	Unblock(r *iface.Request)
	Pop(now sim.Time, canRun func(*iface.Request) bool) *iface.Request
	Len() int
}

// Gate is the controller side of class-aware dispatch. Evaluate answers
// exactly like a Policy's canRun callback and, when the request cannot run,
// names the wait-class its failure belongs to — or -1 when the failure is
// not class-wide. Every member of a class waits on the same condition, so
// one member's failure proves the whole class undispatchable.
//
// ClassToken returns a monotonic token per class that changes whenever the
// class's blocking condition may have cleared. A class that slept at token
// T provably stays undispatchable while the token still reads T, so the
// policy skips the entire class with one comparison instead of one
// evaluation per member.
//
// ClassStable returns a token over class membership: while it stands still,
// every parked member still belongs to the class it parked under. When it
// moves (a write's stream assignment may have changed), the policy flushes
// the class back into the scan path for re-classification — examining only
// the head would miss members whose wait condition changed identity.
type Gate interface {
	Evaluate(r *iface.Request) (ok bool, class int)
	ClassToken(class int) uint64
	ClassStable(class int) uint64
}

// ClassedPolicy is implemented by policies that can park whole wait-classes
// off their scan path. PopClassed is Pop with a Gate instead of a plain
// canRun callback; dispatch results are identical, only the cost changes:
// queued-but-unrunnable requests no longer contribute to every scan.
//
// WakeRequest moves one parked request back into the scan path when its
// wait condition changed identity rather than cleared — a read whose page
// was remapped waits on a different LUN now, which no class token tracks.
type ClassedPolicy interface {
	Policy
	PopClassed(now sim.Time, g Gate) *iface.Request
	WakeRequest(r *iface.Request, class int)
}

// qent is one queued request with its arrival sequence number.
type qent struct {
	r   *iface.Request
	seq uint64
}

// queue is the shared backing store: arrival-ordered with stable removal.
// The head index makes removal at the front — the overwhelmingly common case
// for arrival-ordered dispatch — O(1) instead of a full memmove. Blocked
// requests are parked outside the scanned slice and re-enter at their
// arrival position (by sequence number) when released.
type queue struct {
	items  []qent
	head   int
	seq    uint64
	parked map[*iface.Request]uint64

	// Wait-class side lists (popClassed): whole classes parked off the
	// scan path. Plain scans (popScan) merge them back in seq order, so
	// mixed use keeps arrival-order semantics exact.
	classes  []classList
	occupied []int // indices of classes with parked entries
	scratch  []int // per-occupied cursor state for mutation-free scans
}

func (q *queue) push(r *iface.Request) {
	q.items = append(q.items, qent{r, q.seq})
	q.seq++
}

// pushParked reserves an arrival position for a request that cannot run yet
// without exposing it to scans.
func (q *queue) pushParked(r *iface.Request) {
	if q.parked == nil {
		q.parked = make(map[*iface.Request]uint64)
	}
	q.parked[r] = q.seq
	q.seq++
}

// release re-inserts a parked request at its original arrival position.
// Unknown requests are ignored, so double-release is harmless.
func (q *queue) release(r *iface.Request) {
	seq, ok := q.parked[r]
	if !ok {
		return
	}
	delete(q.parked, r)
	q.insertBySeq(qent{r, seq})
}

// insertBySeq re-inserts an entry at its arrival position (by sequence
// number), keeping the scannable slice seq-ordered.
func (q *queue) insertBySeq(e qent) {
	lo, hi := q.head, len(q.items)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.items[mid].seq < e.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(q.items) {
		q.items = append(q.items, e)
		return
	}
	q.items = append(q.items, qent{})
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = e
}

// view returns the scannable requests in arrival order. The slice aliases
// the queue's storage and is only valid until the next mutation.
func (q *queue) view() []qent { return q.items[q.head:] }

// removeAt removes and returns the i-th scannable request (an index into
// view()).
func (q *queue) removeAt(i int) *iface.Request {
	i += q.head
	r := q.items[i].r
	if i == q.head {
		q.items[i] = qent{}
		q.head++
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		} else if q.head > 64 && q.head*2 >= len(q.items) {
			// Reclaim the dead prefix once it dominates the backing array.
			n := copy(q.items, q.items[q.head:])
			clearTail := q.items[n:]
			for j := range clearTail {
				clearTail[j] = qent{}
			}
			q.items = q.items[:n]
			q.head = 0
		}
		return r
	}
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = qent{}
	q.items = q.items[:len(q.items)-1]
	return r
}

func (q *queue) len() int {
	n := len(q.items) - q.head + len(q.parked)
	for _, ci := range q.occupied {
		n += len(q.classes[ci].ents) - q.classes[ci].head
	}
	return n
}

// classList is one wait-class's parked entries, seq-ordered, with the token
// the class slept at. While asleep and the token unchanged, every member is
// provably undispatchable and the whole list costs one comparison per scan.
type classList struct {
	ents   []qent
	head   int
	token  uint64 // ClassToken the class slept at
	stable uint64 // ClassStable the members parked at
	asleep bool
}

// FIFO dispatches strictly in arrival order, skipping requests that cannot
// run yet. It is the baseline every other policy is measured against.
//
// Under a Gate (PopClassed), requests that fail with a wait-class park in
// per-class side lists instead of being rescanned: dispatch cost tracks the
// handful of runnable candidates, not the queue's length.
type FIFO struct {
	q queue
}

// Name implements Policy.
func (*FIFO) Name() string { return "fifo" }

// Push implements Policy.
func (f *FIFO) Push(r *iface.Request) { f.q.push(r) }

// PushBlocked implements Policy.
func (f *FIFO) PushBlocked(r *iface.Request) { f.q.pushParked(r) }

// Unblock implements Policy.
func (f *FIFO) Unblock(r *iface.Request) { f.q.release(r) }

// Len implements Policy.
func (f *FIFO) Len() int { return f.q.len() }

// Pop implements Policy: the plain linear scan in arrival order.
func (f *FIFO) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	return f.q.popScan(canRun)
}

// PopClassed implements ClassedPolicy: arrival-ordered dispatch with whole
// wait-classes parked off the scan path. The result is exactly Pop's — the
// lowest-seq dispatchable request — because a sleeping class's members are
// all guaranteed undispatchable while its token stands still.
func (f *FIFO) PopClassed(_ sim.Time, g Gate) *iface.Request {
	return f.q.popClassed(g)
}

// WakeRequest implements ClassedPolicy: it pulls one parked request out of
// its class list and back into the scan path at its arrival position.
func (f *FIFO) WakeRequest(r *iface.Request, class int) { f.q.wakeRequest(r, class) }

// popScan is the plain arrival-order scan. When class lists hold entries
// (mixed use with popClassed), they are merged into the scan as if every
// class were awake, so the result is identical to a single arrival-ordered
// queue.
func (q *queue) popScan(canRun func(*iface.Request) bool) *iface.Request {
	if len(q.occupied) == 0 {
		for i, e := range q.view() {
			if canRun(e.r) {
				return q.removeAt(i)
			}
		}
		return nil
	}
	cur := make([]int, len(q.occupied))
	fi := 0
	const noSeq = ^uint64(0)
	for {
		fresh := q.view()
		bestSeq := noSeq
		bestIdx := -1 // index into occupied; -1 means the fresh entry wins
		if fi < len(fresh) {
			bestSeq = fresh[fi].seq
		}
		for oi, ci := range q.occupied {
			cl := &q.classes[ci]
			p := cl.head + cur[oi]
			if p >= len(cl.ents) {
				continue
			}
			if s := cl.ents[p].seq; s < bestSeq {
				bestSeq, bestIdx = s, oi
			}
		}
		if bestSeq == noSeq {
			return nil
		}
		if bestIdx < 0 {
			if canRun(fresh[fi].r) {
				return q.removeAt(fi)
			}
			fi++
			continue
		}
		ci := q.occupied[bestIdx]
		cl := &q.classes[ci]
		p := cl.head + cur[bestIdx]
		if canRun(cl.ents[p].r) {
			r := cl.ents[p].r
			q.classRemoveAt(ci, p)
			return r
		}
		cur[bestIdx]++
	}
}

// classMaintain re-arms the class lists against the gate's current tokens:
// classes whose membership token moved are flushed back into the scan path
// for re-classification, and sleeping classes whose wake token moved are
// woken. Every classed pop runs this once before scanning.
func (q *queue) classMaintain(g Gate) {
	for oi := 0; oi < len(q.occupied); {
		ci := q.occupied[oi]
		cl := &q.classes[ci]
		if cl.stable != g.ClassStable(ci) {
			q.classFlush(ci)
			continue // occupied[oi] was swap-replaced by the flush
		}
		if cl.asleep && g.ClassToken(ci) != cl.token {
			cl.asleep = false
		}
		oi++
	}
}

// popClassed is arrival-ordered dispatch under a Gate. Sleeping classes
// whose token stands still cost one comparison; everything else is the
// usual lowest-seq merge over fresh arrivals and awake class heads.
func (q *queue) popClassed(g Gate) *iface.Request {
	q.classMaintain(g)
	const noSeq = ^uint64(0)
	fi := 0
	for {
		fresh := q.view()
		bestSeq := noSeq
		bestClass := -1
		if fi < len(fresh) {
			bestSeq = fresh[fi].seq
		}
		for _, ci := range q.occupied {
			cl := &q.classes[ci]
			if cl.asleep {
				continue
			}
			if s := cl.ents[cl.head].seq; s < bestSeq {
				bestSeq, bestClass = s, ci
			}
		}
		if bestSeq == noSeq {
			return nil
		}
		if bestClass < 0 {
			e := fresh[fi]
			ok, class := g.Evaluate(e.r)
			if ok {
				return q.removeAt(fi)
			}
			if class >= 0 {
				q.removeAt(fi)
				q.classPark(class, e, g)
				continue // the next entry slid into slot fi
			}
			fi++ // unclassable failure: stays in the scan path
			continue
		}
		cl := &q.classes[bestClass]
		e := cl.ents[cl.head]
		ok, class := g.Evaluate(e.r)
		if ok {
			q.classRemoveAt(bestClass, cl.head)
			return e.r
		}
		if class == bestClass {
			// The class still waits on the same condition: back to sleep
			// until the token moves again. Its remaining members need no
			// evaluation — they fail for the same reason the head did.
			cl.asleep = true
			cl.token = g.ClassToken(bestClass)
			continue
		}
		// The head's wait moved elsewhere: re-park it under its current
		// class, or back into the scan path when the failure is not
		// class-wide.
		q.classRemoveAt(bestClass, cl.head)
		if class >= 0 {
			q.classPark(class, e, g)
		} else {
			q.insertBySeq(e)
		}
	}
}

// wakeRequest pulls one request out of its class list and back into the
// scan path at its arrival position.
func (q *queue) wakeRequest(r *iface.Request, class int) {
	if class < 0 || class >= len(q.classes) {
		return
	}
	cl := &q.classes[class]
	for i := cl.head; i < len(cl.ents); i++ {
		if cl.ents[i].r != r {
			continue
		}
		e := cl.ents[i]
		q.classRemoveAt(class, i)
		q.insertBySeq(e)
		return
	}
}

// scanLoc names the location of a scannable entry during a mutation-free
// scan: class == -1 means the fresh slice at view index idx; otherwise idx
// indexes the named class's ents.
type scanLoc struct{ class, idx int }

// classCursor iterates fresh arrivals and awake class members in ascending
// seq order without mutating the queue — the classed counterpart of ranging
// over view(). Sleeping classes are skipped: their members are provably
// undispatchable while their token stands still, so a scan that filters on
// dispatchability loses nothing by never visiting them. Per-class cursor
// state lives in the queue's scratch slice, so iteration does not allocate
// once the scratch has grown.
type classCursor struct {
	q  *queue
	fi int
}

// scanStart resets the per-class cursors and returns a cursor positioned
// before the first scannable entry.
func (q *queue) scanStart() classCursor {
	q.scratch = q.scratch[:0]
	for range q.occupied {
		q.scratch = append(q.scratch, 0)
	}
	return classCursor{q: q}
}

// next returns the lowest-seq entry not yet yielded, with its location.
// Locations stay valid until the queue's next mutation.
func (c *classCursor) next() (qent, scanLoc, bool) {
	q := c.q
	const noSeq = ^uint64(0)
	fresh := q.view()
	bestSeq := noSeq
	best := -1 // index into occupied; -1 means the fresh entry wins
	if c.fi < len(fresh) {
		bestSeq = fresh[c.fi].seq
	}
	for oi, ci := range q.occupied {
		cl := &q.classes[ci]
		if cl.asleep {
			continue
		}
		p := cl.head + q.scratch[oi]
		if p >= len(cl.ents) {
			continue
		}
		if s := cl.ents[p].seq; s < bestSeq {
			bestSeq, best = s, oi
		}
	}
	if bestSeq == noSeq {
		return qent{}, scanLoc{}, false
	}
	if best < 0 {
		e := fresh[c.fi]
		loc := scanLoc{-1, c.fi}
		c.fi++
		return e, loc, true
	}
	ci := q.occupied[best]
	cl := &q.classes[ci]
	p := cl.head + q.scratch[best]
	q.scratch[best]++
	return cl.ents[p], scanLoc{ci, p}, true
}

// removeLoc removes the entry at a location produced by a classCursor (with
// no intervening queue mutations) and returns its request.
func (q *queue) removeLoc(loc scanLoc) *iface.Request {
	if loc.class < 0 {
		return q.removeAt(loc.idx)
	}
	r := q.classes[loc.class].ents[loc.idx].r
	q.classRemoveAt(loc.class, loc.idx)
	return r
}

// removeRequest removes a scannable request located by pointer, searching
// the fresh slice then the occupied class lists. Returns it, or nil when it
// is not scannable (parked via PushBlocked, or already removed).
func (q *queue) removeRequest(r *iface.Request) *iface.Request {
	for i, e := range q.view() {
		if e.r == r {
			return q.removeAt(i)
		}
	}
	for _, ci := range q.occupied {
		cl := &q.classes[ci]
		for i := cl.head; i < len(cl.ents); i++ {
			if cl.ents[i].r == r {
				q.classRemoveAt(ci, i)
				return r
			}
		}
	}
	return nil
}

// parkRequest locates a scannable request by pointer and parks it under the
// given wait-class. Scans that discover class-wide failures away from a
// class head (Deadline's overdue sweep, Fair's per-source rounds) collect
// them and park here after the scan, so later pops skip the whole class with
// one token comparison. A request already filed under the right class only
// puts that class to sleep: the member just proved the class-wide condition
// still holds.
func (q *queue) parkRequest(r *iface.Request, class int, g Gate) {
	for i, e := range q.view() {
		if e.r == r {
			q.removeAt(i)
			q.classPark(class, e, g)
			return
		}
	}
	for _, ci := range q.occupied {
		cl := &q.classes[ci]
		if ci == class {
			for i := cl.head; i < len(cl.ents); i++ {
				if cl.ents[i].r == r {
					cl.asleep = true
					cl.token = g.ClassToken(class)
					cl.stable = g.ClassStable(class)
					return
				}
			}
			continue
		}
		for i := cl.head; i < len(cl.ents); i++ {
			if cl.ents[i].r != r {
				continue
			}
			e := cl.ents[i]
			q.classRemoveAt(ci, i)
			q.classPark(class, e, g)
			return
		}
	}
}

// parkLog collects (request, class) pairs discovered undispatchable during a
// mutation-free scan, for parking once the scan ends. The backing slices are
// reused across pops.
type parkLog struct {
	rs []*iface.Request
	cs []int
}

func (p *parkLog) record(r *iface.Request, class int) {
	p.rs = append(p.rs, r)
	p.cs = append(p.cs, class)
}

// apply parks every recorded request and resets the log.
func (p *parkLog) apply(q *queue, g Gate) {
	for i, r := range p.rs {
		q.parkRequest(r, p.cs[i], g)
		p.rs[i] = nil
	}
	p.rs, p.cs = p.rs[:0], p.cs[:0]
}

// classPark files an entry under a wait-class and puts the class to sleep
// at the current token: the entry just evaluated undispatchable, and its
// failure condition is shared by every member.
func (q *queue) classPark(ci int, e qent, g Gate) {
	for ci >= len(q.classes) {
		q.classes = append(q.classes, classList{})
	}
	cl := &q.classes[ci]
	if cl.head == len(cl.ents) {
		if cl.head > 0 {
			cl.ents = cl.ents[:0]
			cl.head = 0
		}
		q.occupied = append(q.occupied, ci)
	}
	if n := len(cl.ents); n == cl.head || cl.ents[n-1].seq < e.seq {
		cl.ents = append(cl.ents, e)
	} else {
		// A re-parked entry with an older arrival position (a retargeted
		// read): ordered insert keeps the list scannable in seq order.
		lo, hi := cl.head, len(cl.ents)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cl.ents[mid].seq < e.seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cl.ents = append(cl.ents, qent{})
		copy(cl.ents[lo+1:], cl.ents[lo:])
		cl.ents[lo] = e
	}
	cl.asleep = true
	cl.token = g.ClassToken(ci)
	cl.stable = g.ClassStable(ci)
}

// classFlush returns every parked member of a class to the scan path at its
// arrival position: the class's membership token moved, so each entry must
// be re-evaluated and re-classified individually.
func (q *queue) classFlush(ci int) {
	cl := &q.classes[ci]
	for i := cl.head; i < len(cl.ents); i++ {
		q.insertBySeq(cl.ents[i])
		cl.ents[i] = qent{}
	}
	cl.ents = cl.ents[:0]
	cl.head = 0
	cl.asleep = false
	for oi, c := range q.occupied {
		if c == ci {
			q.occupied[oi] = q.occupied[len(q.occupied)-1]
			q.occupied = q.occupied[:len(q.occupied)-1]
			break
		}
	}
}

// classRemoveAt removes the entry at index i (into ents) from a class list,
// reclaiming the list when it empties.
func (q *queue) classRemoveAt(ci, i int) {
	cl := &q.classes[ci]
	if i == cl.head {
		cl.ents[i] = qent{}
		cl.head++
	} else {
		copy(cl.ents[i:], cl.ents[i+1:])
		cl.ents[len(cl.ents)-1] = qent{}
		cl.ents = cl.ents[:len(cl.ents)-1]
	}
	if cl.head == len(cl.ents) {
		cl.ents = cl.ents[:0]
		cl.head = 0
		for oi, c := range q.occupied {
			if c == ci {
				q.occupied[oi] = q.occupied[len(q.occupied)-1]
				q.occupied = q.occupied[:len(q.occupied)-1]
				break
			}
		}
	}
}

// Preference biases a Priority policy between request types.
type Preference int

const (
	PreferNone Preference = iota
	PreferReads
	PreferWrites
)

func (p Preference) String() string {
	switch p {
	case PreferReads:
		return "reads-first"
	case PreferWrites:
		return "writes-first"
	default:
		return "no-preference"
	}
}

// InternalOrder places controller-internal IOs (GC, WL, mapping) relative to
// application IOs.
type InternalOrder int

const (
	// InternalEqual treats internal and application IOs alike.
	InternalEqual InternalOrder = iota
	// InternalLast lets application IOs overtake internal ones — GC runs in
	// the gaps (non-obtrusive, but risks falling behind under load).
	InternalLast
	// InternalFirst drains internal IOs eagerly — GC debt never builds up,
	// at the price of application latency spikes.
	InternalFirst
)

func (o InternalOrder) String() string {
	switch o {
	case InternalLast:
		return "internal-last"
	case InternalFirst:
		return "internal-first"
	default:
		return "internal-equal"
	}
}

// Priority dispatches the highest-scoring runnable request; ties break in
// arrival order. The score combines the open-interface priority tag, the
// read/write preference, and the internal-vs-application ordering.
//
// Internally the queue is bucketed by score (scores are fixed per request at
// push time, and only a handful of distinct values exist), kept in
// descending score order. Pop walks buckets from the top and returns the
// first runnable request — identical selection to scanning one arrival-
// ordered queue for the best score, but with an early exit instead of an
// O(queue) scan per dispatch.
type Priority struct {
	// Prefer biases between reads and writes.
	Prefer Preference
	// Internal orders controller-internal IOs against application IOs.
	Internal InternalOrder
	// UseTags honors the open-interface priority tag; block-device mode
	// configurations leave it false.
	UseTags bool

	buckets []prioBucket // descending score
	n       int
}

// prioBucket holds the arrival-ordered requests of one score value.
type prioBucket struct {
	score int
	q     queue
}

// Name implements Policy.
func (p *Priority) Name() string { return "priority/" + p.Prefer.String() + "/" + p.Internal.String() }

// bucketFor returns the queue holding the given score, creating it in
// descending score order if needed.
func (p *Priority) bucketFor(s int) *queue {
	i := 0
	for ; i < len(p.buckets); i++ {
		if p.buckets[i].score == s {
			return &p.buckets[i].q
		}
		if p.buckets[i].score < s {
			break
		}
	}
	p.buckets = append(p.buckets, prioBucket{})
	copy(p.buckets[i+1:], p.buckets[i:])
	p.buckets[i] = prioBucket{score: s}
	return &p.buckets[i].q
}

// Push implements Policy.
func (p *Priority) Push(r *iface.Request) {
	p.bucketFor(p.score(r)).push(r)
	p.n++
}

// PushBlocked implements Policy.
func (p *Priority) PushBlocked(r *iface.Request) {
	p.bucketFor(p.score(r)).pushParked(r)
	p.n++
}

// Unblock implements Policy. The score is a pure function of immutable
// request fields, so it finds the same bucket PushBlocked used.
func (p *Priority) Unblock(r *iface.Request) {
	p.bucketFor(p.score(r)).release(r)
}

// Len implements Policy.
func (p *Priority) Len() int { return p.n }

func (p *Priority) score(r *iface.Request) int {
	s := 0
	if p.UseTags {
		s += int(r.Tags.Priority) * 100 // tag dominates
	}
	switch p.Prefer {
	case PreferReads:
		if r.Type == iface.Read {
			s += 10
		}
	case PreferWrites:
		if r.Type == iface.Write {
			s += 10
		}
	}
	internal := r.Source != iface.SourceApp
	switch p.Internal {
	case InternalLast:
		if internal {
			s -= 1000
		}
	case InternalFirst:
		if internal {
			s += 1000
		}
	}
	return s
}

// Pop implements Policy.
func (p *Priority) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	for b := range p.buckets {
		if r := p.buckets[b].q.popScan(canRun); r != nil {
			p.n--
			return r
		}
	}
	return nil
}

// PopClassed implements ClassedPolicy: bucket-major dispatch with each
// bucket's wait-classes parked off its scan path. Selection is identical to
// Pop's — the highest-scoring bucket's earliest dispatchable request —
// because a bucket's sleeping classes are provably undispatchable while
// their tokens stand still.
func (p *Priority) PopClassed(_ sim.Time, g Gate) *iface.Request {
	for b := range p.buckets {
		if r := p.buckets[b].q.popClassed(g); r != nil {
			p.n--
			return r
		}
	}
	return nil
}

// WakeRequest implements ClassedPolicy. The score is a pure function of
// immutable request fields, so it finds the same bucket the request parked
// in.
func (p *Priority) WakeRequest(r *iface.Request, class int) {
	p.bucketFor(p.score(r)).wakeRequest(r, class)
}

// Deadline gives each request a deadline from its submission time, by type.
// Overdue requests are served first, earliest deadline first; when nothing
// is overdue it behaves like the fallback ordering of Priority (with its
// knobs), so deadlines act as a starvation guard rather than the primary
// order.
//
// MaxConsecutiveOverdue controls how overdue IOs are handled relative to
// other IOs (§2.2): 0 means overdue requests preempt everything until the
// backlog drains; k > 0 means after k consecutive overdue dispatches one
// non-overdue request is served, bounding how hard an overdue burst can
// freeze the rest of the queue.
type Deadline struct {
	ReadDeadline     sim.Duration
	WriteDeadline    sim.Duration
	InternalDeadline sim.Duration
	// Fallback orders the queue when nothing is overdue. Nil means FIFO.
	Fallback Policy
	// MaxConsecutiveOverdue bounds overdue preemption (0 = unbounded).
	MaxConsecutiveOverdue int

	q          queue
	overdueRun int
	parks      parkLog
}

// Name implements Policy.
func (d *Deadline) Name() string { return "deadline" }

// Push implements Policy. The fallback policy is only lent the queue during
// Pop; it never stores requests across calls.
func (d *Deadline) Push(r *iface.Request) { d.q.push(r) }

// PushBlocked implements Policy.
func (d *Deadline) PushBlocked(r *iface.Request) { d.q.pushParked(r) }

// Unblock implements Policy.
func (d *Deadline) Unblock(r *iface.Request) { d.q.release(r) }

// Len implements Policy.
func (d *Deadline) Len() int { return d.q.len() }

func (d *Deadline) deadlineFor(r *iface.Request) sim.Time {
	var dl sim.Duration
	switch {
	case r.Source != iface.SourceApp:
		dl = d.InternalDeadline
	case r.Type == iface.Read:
		dl = d.ReadDeadline
	default:
		dl = d.WriteDeadline
	}
	if dl <= 0 {
		return sim.Never
	}
	return r.Submitted.Add(dl)
}

// Pop implements Policy.
func (d *Deadline) Pop(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Overdue first, earliest deadline wins — unless the overdue run just
	// hit its cap, in which case one non-overdue request goes first.
	preempt := d.MaxConsecutiveOverdue <= 0 || d.overdueRun < d.MaxConsecutiveOverdue
	if preempt {
		best, bestDL := -1, sim.Never
		for i, e := range d.q.view() {
			dl := d.deadlineFor(e.r)
			if dl <= now && canRun(e.r) && dl < bestDL {
				best, bestDL = i, dl
			}
		}
		if best >= 0 {
			d.overdueRun++
			return d.q.removeAt(best)
		}
	}
	d.overdueRun = 0
	if r := d.popFresh(now, canRun); r != nil {
		return r
	}
	if preempt {
		return nil // nothing runnable at all
	}
	// The cap demanded a non-overdue request but none is runnable; serve
	// the overdue backlog rather than idling the device.
	best, bestDL := -1, sim.Never
	for i, e := range d.q.view() {
		dl := d.deadlineFor(e.r)
		if dl <= now && canRun(e.r) && dl < bestDL {
			best, bestDL = i, dl
		}
	}
	if best >= 0 {
		d.overdueRun = 1
		return d.q.removeAt(best)
	}
	return nil
}

// popFresh picks among not-yet-overdue requests via the fallback ordering.
func (d *Deadline) popFresh(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	freshRunnable := func(r *iface.Request) bool {
		return d.deadlineFor(r) > now && canRun(r)
	}
	if d.Fallback != nil {
		// Delegate ordering to the fallback by lending it our queue.
		return d.popViaFallback(now, freshRunnable)
	}
	for i, e := range d.q.view() {
		if freshRunnable(e.r) {
			return d.q.removeAt(i)
		}
	}
	return nil
}

func (d *Deadline) popViaFallback(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Feed the fallback a fresh view of our pending items, pop one, and
	// remove it from our queue. Fallback policies are stateless between
	// calls except for their queue, so this stays cheap at simulator scale.
	for _, e := range d.q.view() {
		d.Fallback.Push(e.r)
	}
	picked := d.Fallback.Pop(now, canRun)
	// Drain the fallback completely so the next call starts clean.
	for d.Fallback.Len() > 0 {
		if d.Fallback.Pop(now, func(*iface.Request) bool { return true }) == nil {
			break
		}
	}
	if picked == nil {
		return nil
	}
	for i, e := range d.q.view() {
		if e.r == picked {
			return d.q.removeAt(i)
		}
	}
	return picked
}

// PopClassed implements ClassedPolicy: the same overdue-first/fresh/cap
// sequence as Pop, with whole wait-classes parked off the scan paths.
// Selection is identical to Pop's because a sleeping class's members are all
// guaranteed undispatchable while its token stands still — and deadlines
// only order requests that are dispatchable in the first place.
func (d *Deadline) PopClassed(now sim.Time, g Gate) *iface.Request {
	d.q.classMaintain(g)
	preempt := d.MaxConsecutiveOverdue <= 0 || d.overdueRun < d.MaxConsecutiveOverdue
	if preempt {
		if r := d.popOverdueClassed(now, g); r != nil {
			d.overdueRun++
			return r
		}
	}
	d.overdueRun = 0
	if r := d.popFreshClassed(now, g); r != nil {
		return r
	}
	if preempt {
		return nil // nothing runnable at all
	}
	if r := d.popOverdueClassed(now, g); r != nil {
		d.overdueRun = 1
		return r
	}
	return nil
}

// WakeRequest implements ClassedPolicy.
func (d *Deadline) WakeRequest(r *iface.Request, class int) { d.q.wakeRequest(r, class) }

// popOverdueClassed is Pop's overdue sweep under a Gate: the earliest
// overdue deadline among dispatchable entries wins, ties in arrival order.
// Class-wide failures discovered along the way are parked once the sweep
// ends.
func (d *Deadline) popOverdueClassed(now sim.Time, g Gate) *iface.Request {
	cur := d.q.scanStart()
	best := scanLoc{}
	bestDL := sim.Never
	found := false
	for {
		e, loc, more := cur.next()
		if !more {
			break
		}
		if d.deadlineFor(e.r) > now {
			continue
		}
		ok, class := g.Evaluate(e.r)
		if !ok {
			if class >= 0 {
				d.parks.record(e.r, class)
			}
			continue
		}
		if dl := d.deadlineFor(e.r); dl < bestDL {
			best, bestDL, found = loc, dl, true
		}
	}
	var r *iface.Request
	if found {
		r = d.q.removeLoc(best)
	}
	d.parks.apply(&d.q, g)
	return r
}

// popFreshClassed is popFresh under a Gate.
func (d *Deadline) popFreshClassed(now sim.Time, g Gate) *iface.Request {
	if d.Fallback != nil {
		return d.popViaFallbackClassed(now, g)
	}
	cur := d.q.scanStart()
	for {
		e, loc, more := cur.next()
		if !more {
			break
		}
		if d.deadlineFor(e.r) <= now {
			continue
		}
		ok, class := g.Evaluate(e.r)
		if ok {
			r := d.q.removeLoc(loc)
			d.parks.apply(&d.q, g)
			return r
		}
		if class >= 0 {
			d.parks.record(e.r, class)
		}
	}
	d.parks.apply(&d.q, g)
	return nil
}

// popViaFallbackClassed lends the fallback every scannable entry — fresh
// arrivals and awake class members in seq order, exactly the set a plain
// lend would find runnable — and lets it order them. Sleeping class members
// are withheld: the fallback could never pick them (canRun would refuse), so
// their absence cannot change which request it returns.
func (d *Deadline) popViaFallbackClassed(now sim.Time, g Gate) *iface.Request {
	cur := d.q.scanStart()
	for {
		e, _, more := cur.next()
		if !more {
			break
		}
		d.Fallback.Push(e.r)
	}
	picked := d.Fallback.Pop(now, func(r *iface.Request) bool {
		if d.deadlineFor(r) <= now {
			return false
		}
		ok, class := g.Evaluate(r)
		if !ok && class >= 0 {
			d.parks.record(r, class)
		}
		return ok
	})
	// Drain the fallback completely so the next call starts clean.
	for d.Fallback.Len() > 0 {
		if d.Fallback.Pop(now, func(*iface.Request) bool { return true }) == nil {
			break
		}
	}
	if picked != nil {
		d.q.removeRequest(picked)
	}
	d.parks.apply(&d.q, g)
	return picked
}

// Fair serves sources in weighted round-robin order, preventing any single
// source (for example a write-heavy thread, or GC) from monopolizing the
// array. Weights index by iface.Source; zero weights default to 1.
type Fair struct {
	Weights [iface.NumSources]int

	q       queue
	credits [iface.NumSources]int
	turn    iface.Source
	parks   parkLog
}

// Name implements Policy.
func (f *Fair) Name() string { return "fair" }

// Push implements Policy.
func (f *Fair) Push(r *iface.Request) { f.q.push(r) }

// PushBlocked implements Policy.
func (f *Fair) PushBlocked(r *iface.Request) { f.q.pushParked(r) }

// Unblock implements Policy.
func (f *Fair) Unblock(r *iface.Request) { f.q.release(r) }

// Len implements Policy.
func (f *Fair) Len() int { return f.q.len() }

func (f *Fair) weight(s iface.Source) int {
	if w := f.Weights[s]; w > 0 {
		return w
	}
	return 1
}

// Pop implements Policy.
func (f *Fair) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Try each source starting from the current turn; within a source,
	// arrival order. A source with remaining credits keeps the turn.
	for tried := 0; tried < int(iface.NumSources); tried++ {
		src := iface.Source((int(f.turn) + tried) % iface.NumSources)
		for i, e := range f.q.view() {
			r := e.r
			if r.Source != src || !canRun(r) {
				continue
			}
			if tried != 0 {
				// Turn moved on; reset credits for the new holder.
				f.turn = src
				f.credits[src] = 0
			}
			f.credits[src]++
			if f.credits[src] >= f.weight(src) {
				f.credits[src] = 0
				f.turn = iface.Source((int(src) + 1) % iface.NumSources)
			}
			return f.q.removeAt(i)
		}
	}
	return nil
}

// PopClassed implements ClassedPolicy: the same weighted round-robin as Pop
// with whole wait-classes parked off the per-source scans. Selection and
// credit bookkeeping are identical to Pop's — a sleeping class's members
// would fail canRun in the plain scan too, and each entry is evaluated in at
// most one source round (the one matching its own source).
func (f *Fair) PopClassed(_ sim.Time, g Gate) *iface.Request {
	f.q.classMaintain(g)
	for tried := 0; tried < int(iface.NumSources); tried++ {
		src := iface.Source((int(f.turn) + tried) % iface.NumSources)
		cur := f.q.scanStart()
		for {
			e, loc, more := cur.next()
			if !more {
				break
			}
			r := e.r
			if r.Source != src {
				continue
			}
			ok, class := g.Evaluate(r)
			if !ok {
				if class >= 0 {
					f.parks.record(r, class)
				}
				continue
			}
			if tried != 0 {
				// Turn moved on; reset credits for the new holder.
				f.turn = src
				f.credits[src] = 0
			}
			f.credits[src]++
			if f.credits[src] >= f.weight(src) {
				f.credits[src] = 0
				f.turn = iface.Source((int(src) + 1) % iface.NumSources)
			}
			f.q.removeLoc(loc)
			f.parks.apply(&f.q, g)
			return r
		}
	}
	f.parks.apply(&f.q, g)
	return nil
}

// WakeRequest implements ClassedPolicy.
func (f *Fair) WakeRequest(r *iface.Request, class int) { f.q.wakeRequest(r, class) }
