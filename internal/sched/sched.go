// Package sched is the SSD controller's IO scheduling framework — the
// central module of the simulator, as the paper puts it. Given the state of
// the flash array and a queue of pending IOs from various sources
// (application, garbage collection, wear leveling, mapping) of various types
// (read, write, erase, copyback) that have waited different lengths of time,
// a Policy decides which IO executes next, and an Allocator decides where
// (on which LUN) a write lands.
//
// Policies are deliberately small and composable so that the design space —
// priority schemes by source, type and tag; deadlines with overdue handling;
// fairness across sources — can be explored by swapping one value.
package sched

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Policy orders the controller's pending IO queue. Push enqueues; Pop
// removes and returns the next request to dispatch among those for which
// canRun returns true, or nil if none is dispatchable.
//
// canRun encapsulates hardware and space constraints the policy cannot see:
// the target LUN of a read must be idle, a write needs some LUN with room,
// and translation dependencies must have drained.
type Policy interface {
	Name() string
	Push(r *iface.Request)
	Pop(now sim.Time, canRun func(*iface.Request) bool) *iface.Request
	Len() int
}

// queue is the shared backing store: arrival-ordered with stable removal.
type queue struct {
	items []*iface.Request
}

func (q *queue) push(r *iface.Request) { q.items = append(q.items, r) }

func (q *queue) removeAt(i int) *iface.Request {
	r := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return r
}

func (q *queue) len() int { return len(q.items) }

// FIFO dispatches strictly in arrival order, skipping requests that cannot
// run yet. It is the baseline every other policy is measured against.
type FIFO struct {
	q queue
}

// Name implements Policy.
func (*FIFO) Name() string { return "fifo" }

// Push implements Policy.
func (f *FIFO) Push(r *iface.Request) { f.q.push(r) }

// Len implements Policy.
func (f *FIFO) Len() int { return f.q.len() }

// Pop implements Policy.
func (f *FIFO) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	for i, r := range f.q.items {
		if canRun(r) {
			return f.q.removeAt(i)
		}
	}
	return nil
}

// Preference biases a Priority policy between request types.
type Preference int

const (
	PreferNone Preference = iota
	PreferReads
	PreferWrites
)

func (p Preference) String() string {
	switch p {
	case PreferReads:
		return "reads-first"
	case PreferWrites:
		return "writes-first"
	default:
		return "no-preference"
	}
}

// InternalOrder places controller-internal IOs (GC, WL, mapping) relative to
// application IOs.
type InternalOrder int

const (
	// InternalEqual treats internal and application IOs alike.
	InternalEqual InternalOrder = iota
	// InternalLast lets application IOs overtake internal ones — GC runs in
	// the gaps (non-obtrusive, but risks falling behind under load).
	InternalLast
	// InternalFirst drains internal IOs eagerly — GC debt never builds up,
	// at the price of application latency spikes.
	InternalFirst
)

func (o InternalOrder) String() string {
	switch o {
	case InternalLast:
		return "internal-last"
	case InternalFirst:
		return "internal-first"
	default:
		return "internal-equal"
	}
}

// Priority dispatches the highest-scoring runnable request; ties break in
// arrival order. The score combines the open-interface priority tag, the
// read/write preference, and the internal-vs-application ordering.
type Priority struct {
	// Prefer biases between reads and writes.
	Prefer Preference
	// Internal orders controller-internal IOs against application IOs.
	Internal InternalOrder
	// UseTags honors the open-interface priority tag; block-device mode
	// configurations leave it false.
	UseTags bool

	q queue
}

// Name implements Policy.
func (p *Priority) Name() string { return "priority/" + p.Prefer.String() + "/" + p.Internal.String() }

// Push implements Policy.
func (p *Priority) Push(r *iface.Request) { p.q.push(r) }

// Len implements Policy.
func (p *Priority) Len() int { return p.q.len() }

func (p *Priority) score(r *iface.Request) int {
	s := 0
	if p.UseTags {
		s += int(r.Tags.Priority) * 100 // tag dominates
	}
	switch p.Prefer {
	case PreferReads:
		if r.Type == iface.Read {
			s += 10
		}
	case PreferWrites:
		if r.Type == iface.Write {
			s += 10
		}
	}
	internal := r.Source != iface.SourceApp
	switch p.Internal {
	case InternalLast:
		if internal {
			s -= 1000
		}
	case InternalFirst:
		if internal {
			s += 1000
		}
	}
	return s
}

// Pop implements Policy.
func (p *Priority) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	best, bestScore := -1, 0
	for i, r := range p.q.items {
		if !canRun(r) {
			continue
		}
		s := p.score(r)
		if best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		return nil
	}
	return p.q.removeAt(best)
}

// Deadline gives each request a deadline from its submission time, by type.
// Overdue requests are served first, earliest deadline first; when nothing
// is overdue it behaves like the fallback ordering of Priority (with its
// knobs), so deadlines act as a starvation guard rather than the primary
// order.
//
// MaxConsecutiveOverdue controls how overdue IOs are handled relative to
// other IOs (§2.2): 0 means overdue requests preempt everything until the
// backlog drains; k > 0 means after k consecutive overdue dispatches one
// non-overdue request is served, bounding how hard an overdue burst can
// freeze the rest of the queue.
type Deadline struct {
	ReadDeadline     sim.Duration
	WriteDeadline    sim.Duration
	InternalDeadline sim.Duration
	// Fallback orders the queue when nothing is overdue. Nil means FIFO.
	Fallback Policy
	// MaxConsecutiveOverdue bounds overdue preemption (0 = unbounded).
	MaxConsecutiveOverdue int

	q          queue
	overdueRun int
}

// Name implements Policy.
func (d *Deadline) Name() string { return "deadline" }

// Push implements Policy. The fallback policy is only lent the queue during
// Pop; it never stores requests across calls.
func (d *Deadline) Push(r *iface.Request) { d.q.push(r) }

// Len implements Policy.
func (d *Deadline) Len() int { return d.q.len() }

func (d *Deadline) deadlineFor(r *iface.Request) sim.Time {
	var dl sim.Duration
	switch {
	case r.Source != iface.SourceApp:
		dl = d.InternalDeadline
	case r.Type == iface.Read:
		dl = d.ReadDeadline
	default:
		dl = d.WriteDeadline
	}
	if dl <= 0 {
		return sim.Never
	}
	return r.Submitted.Add(dl)
}

// Pop implements Policy.
func (d *Deadline) Pop(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Overdue first, earliest deadline wins — unless the overdue run just
	// hit its cap, in which case one non-overdue request goes first.
	preempt := d.MaxConsecutiveOverdue <= 0 || d.overdueRun < d.MaxConsecutiveOverdue
	if preempt {
		best, bestDL := -1, sim.Never
		for i, r := range d.q.items {
			dl := d.deadlineFor(r)
			if dl <= now && canRun(r) && dl < bestDL {
				best, bestDL = i, dl
			}
		}
		if best >= 0 {
			d.overdueRun++
			return d.q.removeAt(best)
		}
	}
	d.overdueRun = 0
	if r := d.popFresh(now, canRun); r != nil {
		return r
	}
	if preempt {
		return nil // nothing runnable at all
	}
	// The cap demanded a non-overdue request but none is runnable; serve
	// the overdue backlog rather than idling the device.
	best, bestDL := -1, sim.Never
	for i, r := range d.q.items {
		dl := d.deadlineFor(r)
		if dl <= now && canRun(r) && dl < bestDL {
			best, bestDL = i, dl
		}
	}
	if best >= 0 {
		d.overdueRun = 1
		return d.q.removeAt(best)
	}
	return nil
}

// popFresh picks among not-yet-overdue requests via the fallback ordering.
func (d *Deadline) popFresh(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	freshRunnable := func(r *iface.Request) bool {
		return d.deadlineFor(r) > now && canRun(r)
	}
	if d.Fallback != nil {
		// Delegate ordering to the fallback by lending it our queue.
		return d.popViaFallback(now, freshRunnable)
	}
	for i, r := range d.q.items {
		if freshRunnable(r) {
			return d.q.removeAt(i)
		}
	}
	return nil
}

func (d *Deadline) popViaFallback(now sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Feed the fallback a fresh view of our pending items, pop one, and
	// remove it from our queue. Fallback policies are stateless between
	// calls except for their queue, so this stays cheap at simulator scale.
	for _, r := range d.q.items {
		d.Fallback.Push(r)
	}
	picked := d.Fallback.Pop(now, canRun)
	// Drain the fallback completely so the next call starts clean.
	for d.Fallback.Len() > 0 {
		if d.Fallback.Pop(now, func(*iface.Request) bool { return true }) == nil {
			break
		}
	}
	if picked == nil {
		return nil
	}
	for i, r := range d.q.items {
		if r == picked {
			return d.q.removeAt(i)
		}
	}
	return picked
}

// Fair serves sources in weighted round-robin order, preventing any single
// source (for example a write-heavy thread, or GC) from monopolizing the
// array. Weights index by iface.Source; zero weights default to 1.
type Fair struct {
	Weights [iface.NumSources]int

	q       queue
	credits [iface.NumSources]int
	turn    iface.Source
}

// Name implements Policy.
func (f *Fair) Name() string { return "fair" }

// Push implements Policy.
func (f *Fair) Push(r *iface.Request) { f.q.push(r) }

// Len implements Policy.
func (f *Fair) Len() int { return f.q.len() }

func (f *Fair) weight(s iface.Source) int {
	if w := f.Weights[s]; w > 0 {
		return w
	}
	return 1
}

// Pop implements Policy.
func (f *Fair) Pop(_ sim.Time, canRun func(*iface.Request) bool) *iface.Request {
	// Try each source starting from the current turn; within a source,
	// arrival order. A source with remaining credits keeps the turn.
	for tried := 0; tried < int(iface.NumSources); tried++ {
		src := iface.Source((int(f.turn) + tried) % iface.NumSources)
		for i, r := range f.q.items {
			if r.Source != src || !canRun(r) {
				continue
			}
			if tried != 0 {
				// Turn moved on; reset credits for the new holder.
				f.turn = src
				f.credits[src] = 0
			}
			f.credits[src]++
			if f.credits[src] >= f.weight(src) {
				f.credits[src] = 0
				f.turn = iface.Source((int(src) + 1) % iface.NumSources)
			}
			return f.q.removeAt(i)
		}
	}
	return nil
}
