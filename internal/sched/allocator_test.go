package sched

import (
	"testing"

	"eagletree/internal/iface"
)

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{}
	views := []LUNView{
		{CanAlloc: true}, {CanAlloc: true}, {CanAlloc: true},
	}
	var got []int
	for i := 0; i < 6; i++ {
		lun, ok := rr.PickLUN(&iface.Request{}, views)
		if !ok {
			t.Fatal("no LUN")
		}
		got = append(got, lun)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsBusyAndFull(t *testing.T) {
	rr := &RoundRobin{}
	views := []LUNView{
		{Busy: true, CanAlloc: true},
		{CanAlloc: false},
		{CanAlloc: true},
	}
	lun, ok := rr.PickLUN(&iface.Request{}, views)
	if !ok || lun != 2 {
		t.Fatalf("PickLUN = %d %v, want 2", lun, ok)
	}
	views[2].Busy = true
	if _, ok := rr.PickLUN(&iface.Request{}, views); ok {
		t.Fatal("picked a LUN when none available")
	}
}

func TestLeastLoadedPicksShortestQueue(t *testing.T) {
	views := []LUNView{
		{CanAlloc: true, Queued: 5, FreeAt: 0},
		{CanAlloc: true, Queued: 1, FreeAt: 100},
		{CanAlloc: true, Queued: 1, FreeAt: 50},
	}
	lun, ok := LeastLoaded{}.PickLUN(&iface.Request{}, views)
	if !ok || lun != 2 {
		t.Fatalf("PickLUN = %d %v, want 2 (shortest queue, earliest free)", lun, ok)
	}
}

func TestLeastLoadedExcludesBusy(t *testing.T) {
	views := []LUNView{
		{Busy: true, CanAlloc: true, Queued: 0},
		{CanAlloc: true, Queued: 9},
	}
	lun, ok := LeastLoaded{}.PickLUN(&iface.Request{}, views)
	if !ok || lun != 1 {
		t.Fatalf("PickLUN = %d %v, want 1", lun, ok)
	}
}

func TestStripedIsDeterministic(t *testing.T) {
	views := make([]LUNView, 4)
	for i := range views {
		views[i].CanAlloc = true
	}
	r := &iface.Request{LPN: 10}
	lun, ok := Striped{}.PickLUN(r, views)
	if !ok || lun != 2 {
		t.Fatalf("PickLUN = %d %v, want 2 (10 mod 4)", lun, ok)
	}
	// Striping refuses rather than relocating when the home LUN is busy.
	views[2].Busy = true
	if _, ok := (Striped{}).PickLUN(r, views); ok {
		t.Fatal("striped allocator moved a page off its stripe")
	}
}

func TestAllocatorNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "roundrobin" ||
		(LeastLoaded{}).Name() != "leastloaded" ||
		(Striped{}).Name() != "striped" {
		t.Error("allocator names wrong")
	}
}
