package sched

import (
	"testing"
	"testing/quick"

	"eagletree/internal/iface"
)

func patReq(thread int, lpn iface.LPN) *iface.Request {
	return &iface.Request{Type: iface.Write, Thread: thread, LPN: lpn}
}

func TestPatternDetectorSequentialRun(t *testing.T) {
	d := &PatternDetector{MinRun: 4}
	var got Pattern
	for i := 0; i < 8; i++ {
		got = d.Observe(patReq(0, iface.LPN(100+i)))
	}
	if got != PatternSequential {
		t.Fatalf("8-long ascending run classified %v", got)
	}
	if d.RunLength(0) != 8 {
		t.Fatalf("run length %d, want 8", d.RunLength(0))
	}
}

func TestPatternDetectorBreaksRun(t *testing.T) {
	d := &PatternDetector{MinRun: 4}
	for i := 0; i < 6; i++ {
		d.Observe(patReq(0, iface.LPN(i)))
	}
	if got := d.Observe(patReq(0, 500)); got != PatternRandom {
		t.Fatalf("run break classified %v, want random", got)
	}
	if got := d.Observe(patReq(0, 501)); got != PatternUnknown {
		t.Fatalf("fresh 2-run classified %v, want unknown", got)
	}
}

func TestPatternDetectorPerThread(t *testing.T) {
	// Two interleaved sequential streams: per-thread tracking must classify
	// both sequential even though the merged arrival order alternates.
	d := &PatternDetector{MinRun: 4}
	var a, b Pattern
	for i := 0; i < 8; i++ {
		a = d.Observe(patReq(1, iface.LPN(i)))
		b = d.Observe(patReq(2, iface.LPN(1000+i)))
	}
	if a != PatternSequential || b != PatternSequential {
		t.Fatalf("interleaved streams classified %v / %v", a, b)
	}
}

func TestPatternDetectorShortRunsStayUnknown(t *testing.T) {
	d := &PatternDetector{MinRun: 8}
	for i := 0; i < 7; i++ {
		if got := d.Observe(patReq(0, iface.LPN(i))); got != PatternUnknown {
			t.Fatalf("position %d classified %v before MinRun", i, got)
		}
	}
}

// TestPatternDetectorNeverSeqWithoutRun: property — random single
// observations (each to a fresh thread) can never yield sequential.
func TestPatternDetectorNeverSeqWithoutRun(t *testing.T) {
	f := func(lpns []int16) bool {
		d := &PatternDetector{}
		for i, lpn := range lpns {
			if d.Observe(patReq(i, iface.LPN(lpn))) == PatternSequential {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternAwareStripesRuns(t *testing.T) {
	p := &PatternAware{Detector: &PatternDetector{MinRun: 2}}
	views := make([]LUNView, 4)
	for i := range views {
		views[i] = LUNView{CanAlloc: true}
	}
	// Warm the run, then verify striping: LPN k -> LUN k%4.
	p.PickLUN(patReq(0, 0), views)
	for k := 1; k < 12; k++ {
		lun, ok := p.PickLUN(patReq(0, iface.LPN(k)), views)
		if !ok {
			t.Fatalf("no LUN for lpn %d", k)
		}
		if lun != k%4 {
			t.Fatalf("lpn %d placed on LUN %d, want %d", k, lun, k%4)
		}
	}
}

func TestPatternAwareFallsBackWhenStripeBusy(t *testing.T) {
	p := &PatternAware{Detector: &PatternDetector{MinRun: 2}}
	views := make([]LUNView, 4)
	for i := range views {
		views[i] = LUNView{CanAlloc: true}
	}
	p.PickLUN(patReq(0, 0), views)
	p.PickLUN(patReq(0, 1), views)
	views[2].Busy = true // stripe target of LPN 2
	lun, ok := p.PickLUN(patReq(0, 2), views)
	if !ok {
		t.Fatal("no LUN despite three idle ones")
	}
	if lun == 2 {
		t.Fatal("picked the busy stripe target")
	}
}

func TestPatternAwareRandomUsesLeastLoaded(t *testing.T) {
	p := &PatternAware{Detector: &PatternDetector{MinRun: 4}}
	views := []LUNView{
		{CanAlloc: true, Queued: 3},
		{CanAlloc: true, Queued: 0},
		{CanAlloc: true, Queued: 5},
	}
	lun, ok := p.PickLUN(patReq(0, 999), views)
	if !ok || lun != 1 {
		t.Fatalf("random write placed on LUN %d, want least-loaded 1", lun)
	}
}

func TestPatternStrings(t *testing.T) {
	if PatternSequential.String() != "sequential" ||
		PatternRandom.String() != "random" ||
		PatternUnknown.String() != "unknown" {
		t.Error("pattern strings wrong")
	}
}
