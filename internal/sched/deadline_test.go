package sched

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func always(*iface.Request) bool { return true }

func dlRead(id uint64, sub sim.Time) *iface.Request {
	return &iface.Request{ID: id, Type: iface.Read, Submitted: sub}
}

func dlWrite(id uint64, sub sim.Time) *iface.Request {
	return &iface.Request{ID: id, Type: iface.Write, Submitted: sub}
}

// With no cap, an overdue backlog is drained completely before any fresh
// request is served.
func TestDeadlineUnboundedPreemption(t *testing.T) {
	d := &Deadline{ReadDeadline: sim.Microsecond, WriteDeadline: sim.Second}
	for i := uint64(1); i <= 4; i++ {
		d.Push(dlRead(i, 0)) // overdue at now
	}
	d.Push(dlWrite(100, 0)) // fresh for a long time
	now := sim.Time(10 * sim.Microsecond)
	var order []uint64
	for {
		r := d.Pop(now, always)
		if r == nil {
			break
		}
		order = append(order, r.ID)
	}
	want := []uint64{1, 2, 3, 4, 100}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// With a cap of 2, every third dispatch admits a fresh request even while
// overdue work remains.
func TestDeadlineOverdueCapAdmitsFresh(t *testing.T) {
	d := &Deadline{ReadDeadline: sim.Microsecond, WriteDeadline: sim.Second, MaxConsecutiveOverdue: 2}
	for i := uint64(1); i <= 4; i++ {
		d.Push(dlRead(i, 0))
	}
	d.Push(dlWrite(100, 0))
	d.Push(dlWrite(101, 0))
	now := sim.Time(10 * sim.Microsecond)
	var order []uint64
	for {
		r := d.Pop(now, always)
		if r == nil {
			break
		}
		order = append(order, r.ID)
	}
	want := []uint64{1, 2, 100, 3, 4, 101}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// When the cap demands a fresh request but none is runnable, the device must
// not idle: overdue work continues.
func TestDeadlineCapDoesNotIdleDevice(t *testing.T) {
	d := &Deadline{ReadDeadline: sim.Microsecond, MaxConsecutiveOverdue: 1}
	d.Push(dlRead(1, 0))
	d.Push(dlRead(2, 0))
	d.Push(dlRead(3, 0))
	now := sim.Time(10 * sim.Microsecond)
	popped := 0
	for {
		if d.Pop(now, always) == nil {
			break
		}
		popped++
	}
	if popped != 3 {
		t.Fatalf("popped %d of 3 with an all-overdue queue", popped)
	}
}

// The overdue run counter resets once the backlog drains.
func TestDeadlineRunCounterResets(t *testing.T) {
	d := &Deadline{ReadDeadline: sim.Microsecond, WriteDeadline: sim.Second, MaxConsecutiveOverdue: 2}
	now := sim.Time(10 * sim.Microsecond)
	d.Push(dlRead(1, 0))
	d.Push(dlWrite(50, 0))
	if got := d.Pop(now, always); got.ID != 1 {
		t.Fatalf("first pop %d", got.ID)
	}
	if got := d.Pop(now, always); got.ID != 50 {
		t.Fatalf("second pop %d", got.ID)
	}
	// New overdue burst: the cap window must be fresh (2 overdue in a row).
	d.Push(dlRead(2, 0))
	d.Push(dlRead(3, 0))
	d.Push(dlWrite(51, 0))
	if got := d.Pop(now, always); got.ID != 2 {
		t.Fatalf("third pop %d", got.ID)
	}
	if got := d.Pop(now, always); got.ID != 3 {
		t.Fatalf("fourth pop %d, cap window did not reset", got.ID)
	}
	if got := d.Pop(now, always); got.ID != 51 {
		t.Fatalf("fifth pop %d", got.ID)
	}
}
