package sched

import (
	"math/rand"
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// modelGate is a Gate over explicit shared predicates, honoring the contract
// the controller provides: every member of a wait-class waits on the same
// condition (one member's failure proves the whole class undispatchable), a
// class's token moves whenever its condition may have cleared, and its
// stable token moves whenever a member's wait may have changed identity.
// Evaluate agrees exactly with the plain canRun over the same state, so Pop
// and PopClassed must select identical requests.
type modelGate struct {
	class   map[uint64]int  // request ID → wait-class; absent = unclassed
	solo    map[uint64]bool // unclassed requests currently blocked
	blocked [8]bool         // the per-class shared condition
	tokens  [8]uint64
	stable  [8]uint64
}

func newModelGate() *modelGate {
	return &modelGate{class: make(map[uint64]int), solo: make(map[uint64]bool)}
}

func (m *modelGate) canRun(r *iface.Request) bool {
	if c, ok := m.class[r.ID]; ok {
		return !m.blocked[c]
	}
	return !m.solo[r.ID]
}

func (m *modelGate) Evaluate(r *iface.Request) (bool, int) {
	if c, ok := m.class[r.ID]; ok {
		if m.blocked[c] {
			return false, c
		}
		return true, -1
	}
	if m.solo[r.ID] {
		return false, -1 // unclassed failure: stays in the scan path
	}
	return true, -1
}

func (m *modelGate) ClassToken(c int) uint64  { return m.tokens[c] }
func (m *modelGate) ClassStable(c int) uint64 { return m.stable[c] }

// toggle flips a class's shared condition, bumping its wake token — the way
// a LUN going idle (or busy) moves the controller's epoch.
func (m *modelGate) toggle(c int) {
	m.blocked[c] = !m.blocked[c]
	m.tokens[c]++
}

// moveOne reassigns one member of class c to class nc (or to unclassed when
// nc < 0) and bumps c's stable token: that member's wait changed identity,
// the way a read retargets when its page is remapped.
func (m *modelGate) moveOne(c, nc int, soloBlocked bool) {
	for id, cl := range m.class {
		if cl != c {
			continue
		}
		if nc < 0 {
			delete(m.class, id)
			if soloBlocked {
				m.solo[id] = true
			}
		} else {
			m.class[id] = nc
		}
		m.stable[c]++
		return
	}
}

// forget drops a popped request from the model.
func (m *modelGate) forget(id uint64) {
	delete(m.class, id)
	delete(m.solo, id)
}

func classedPairs() [][2]Policy {
	return [][2]Policy{
		{&FIFO{}, &FIFO{}},
		{&Priority{Prefer: PreferReads, Internal: InternalLast}, &Priority{Prefer: PreferReads, Internal: InternalLast}},
		{&Deadline{ReadDeadline: 50, WriteDeadline: 200}, &Deadline{ReadDeadline: 50, WriteDeadline: 200}},
		{
			&Deadline{ReadDeadline: 50, WriteDeadline: 200, MaxConsecutiveOverdue: 2},
			&Deadline{ReadDeadline: 50, WriteDeadline: 200, MaxConsecutiveOverdue: 2},
		},
		{
			&Deadline{ReadDeadline: 50, InternalDeadline: 400, Fallback: &Priority{Prefer: PreferReads}},
			&Deadline{ReadDeadline: 50, InternalDeadline: 400, Fallback: &Priority{Prefer: PreferReads}},
		},
		{&Fair{Weights: [iface.NumSources]int{2, 1, 1, 1}}, &Fair{Weights: [iface.NumSources]int{2, 1, 1, 1}}},
	}
}

// TestClassedMatchesPlain drives a plain-Pop instance and a PopClassed
// instance of every classed policy through the same random schedule of
// pushes, condition flips, wait retargets and pops, and requires identical
// selections throughout. This is the determinism contract the controller
// relies on when it routes dispatch through the classed gate.
func TestClassedMatchesPlain(t *testing.T) {
	for _, pair := range classedPairs() {
		plain, classed := pair[0], pair[1]
		cp, ok := classed.(ClassedPolicy)
		if !ok {
			t.Fatalf("%s does not implement ClassedPolicy", classed.Name())
		}
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			gate := newModelGate()
			now := sim.Time(0)
			nextID := uint64(1)
			queued := 0
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(12); {
				case op < 5: // push
					r := &iface.Request{ID: nextID, Submitted: now}
					nextID++
					if rng.Intn(2) == 0 {
						r.Type = iface.Read
					} else {
						r.Type = iface.Write
					}
					if rng.Intn(4) == 0 {
						r.Source = iface.SourceGC
					}
					switch rng.Intn(4) {
					case 0: // unclassed, runnable
					case 1: // unclassed, individually blocked
						gate.solo[r.ID] = true
					default: // classed: waits on a shared condition
						gate.class[r.ID] = rng.Intn(len(gate.tokens))
					}
					plain.Push(r)
					classed.Push(r)
					queued++
				case op < 6: // a shared condition flips
					gate.toggle(rng.Intn(len(gate.tokens)))
				case op < 7: // one member's wait changes identity
					c := rng.Intn(len(gate.tokens))
					nc := rng.Intn(len(gate.tokens)+1) - 1
					gate.moveOne(c, nc, rng.Intn(2) == 0)
				case op < 8: // an individual block clears or forms
					for id := range gate.solo {
						delete(gate.solo, id)
						break
					}
				case op < 9: // time passes: deadlines become overdue
					now = now.Add(sim.Duration(rng.Intn(100)))
				default: // pop both, compare
					a := plain.Pop(now, gate.canRun)
					b := cp.PopClassed(now, gate)
					switch {
					case a == nil && b == nil:
					case a == nil || b == nil:
						t.Fatalf("%s seed %d step %d: plain=%v classed=%v", plain.Name(), seed, step, a, b)
					case a.ID != b.ID:
						t.Fatalf("%s seed %d step %d: plain popped %d, classed popped %d", plain.Name(), seed, step, a.ID, b.ID)
					default:
						gate.forget(a.ID)
						queued--
					}
				}
				if lp, lc := plain.Len(), classed.Len(); lp != lc || lp != queued {
					t.Fatalf("%s seed %d step %d: Len plain=%d classed=%d want %d", plain.Name(), seed, step, lp, lc, queued)
				}
			}
			// Drain with every condition clear: both must empty identically.
			for c := range gate.tokens {
				if gate.blocked[c] {
					gate.toggle(c)
				}
			}
			gate.solo = map[uint64]bool{}
			for {
				a := plain.Pop(now, gate.canRun)
				b := cp.PopClassed(now, gate)
				if a == nil && b == nil {
					break
				}
				if a == nil || b == nil || a.ID != b.ID {
					t.Fatalf("%s seed %d drain: plain=%v classed=%v", plain.Name(), seed, a, b)
				}
			}
		}
	}
}
