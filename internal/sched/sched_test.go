package sched

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func req(id uint64, t iface.ReqType, src iface.Source) *iface.Request {
	return &iface.Request{ID: id, Type: t, Source: src}
}

func runAll(*iface.Request) bool { return false }

func yes(*iface.Request) bool { return true }

func TestFIFOOrder(t *testing.T) {
	var f FIFO
	f.Push(req(1, iface.Read, iface.SourceApp))
	f.Push(req(2, iface.Write, iface.SourceApp))
	f.Push(req(3, iface.Read, iface.SourceApp))
	var got []uint64
	for f.Len() > 0 {
		got = append(got, f.Pop(0, yes).ID)
	}
	for i, want := range []uint64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order %v", got)
		}
	}
}

func TestFIFOSkipsBlocked(t *testing.T) {
	var f FIFO
	f.Push(req(1, iface.Read, iface.SourceApp))
	f.Push(req(2, iface.Write, iface.SourceApp))
	r := f.Pop(0, func(r *iface.Request) bool { return r.ID == 2 })
	if r == nil || r.ID != 2 {
		t.Fatalf("Pop = %v, want req 2", r)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFIFONilWhenNothingRunnable(t *testing.T) {
	var f FIFO
	f.Push(req(1, iface.Read, iface.SourceApp))
	if r := f.Pop(0, runAll); r != nil {
		t.Fatalf("Pop = %v, want nil", r)
	}
	if f.Len() != 1 {
		t.Fatal("non-runnable request was dropped")
	}
}

func TestPriorityPreferReads(t *testing.T) {
	p := &Priority{Prefer: PreferReads}
	p.Push(req(1, iface.Write, iface.SourceApp))
	p.Push(req(2, iface.Read, iface.SourceApp))
	if r := p.Pop(0, yes); r.ID != 2 {
		t.Fatalf("got %d, want the read", r.ID)
	}
}

func TestPriorityPreferWrites(t *testing.T) {
	p := &Priority{Prefer: PreferWrites}
	p.Push(req(1, iface.Read, iface.SourceApp))
	p.Push(req(2, iface.Write, iface.SourceApp))
	if r := p.Pop(0, yes); r.ID != 2 {
		t.Fatalf("got %d, want the write", r.ID)
	}
}

func TestPriorityTieBreaksFIFO(t *testing.T) {
	p := &Priority{Prefer: PreferReads}
	p.Push(req(1, iface.Read, iface.SourceApp))
	p.Push(req(2, iface.Read, iface.SourceApp))
	if r := p.Pop(0, yes); r.ID != 1 {
		t.Fatalf("tie broke to %d, want arrival order", r.ID)
	}
}

func TestPriorityInternalLast(t *testing.T) {
	p := &Priority{Internal: InternalLast}
	p.Push(req(1, iface.Write, iface.SourceGC))
	p.Push(req(2, iface.Write, iface.SourceApp))
	if r := p.Pop(0, yes); r.ID != 2 {
		t.Fatalf("got %d, want app write before GC", r.ID)
	}
}

func TestPriorityInternalFirst(t *testing.T) {
	p := &Priority{Internal: InternalFirst}
	p.Push(req(1, iface.Write, iface.SourceApp))
	p.Push(req(2, iface.Write, iface.SourceGC))
	if r := p.Pop(0, yes); r.ID != 2 {
		t.Fatalf("got %d, want GC first", r.ID)
	}
}

func TestPriorityTagDominates(t *testing.T) {
	p := &Priority{Prefer: PreferWrites, UseTags: true}
	p.Push(req(1, iface.Write, iface.SourceApp)) // normal priority write
	hi := req(2, iface.Read, iface.SourceApp)
	hi.Tags.Priority = iface.PriorityHigh
	p.Push(hi)
	if r := p.Pop(0, yes); r.ID != 2 {
		t.Fatalf("got %d, want high-priority tag to beat type preference", r.ID)
	}
}

func TestPriorityTagIgnoredWhenLocked(t *testing.T) {
	p := &Priority{Prefer: PreferWrites, UseTags: false}
	p.Push(req(1, iface.Write, iface.SourceApp))
	hi := req(2, iface.Read, iface.SourceApp)
	hi.Tags.Priority = iface.PriorityHigh
	p.Push(hi)
	if r := p.Pop(0, yes); r.ID != 1 {
		t.Fatalf("got %d; block-device mode must ignore tags", r.ID)
	}
}

func TestDeadlineOverdueFirst(t *testing.T) {
	d := &Deadline{ReadDeadline: 100, WriteDeadline: 1000}
	w := req(1, iface.Write, iface.SourceApp)
	w.Submitted = 0
	r := req(2, iface.Read, iface.SourceApp)
	r.Submitted = 50
	d.Push(w)
	d.Push(r)
	// At t=200 the read (deadline 150) is overdue, the write (1000) is not.
	if got := d.Pop(200, yes); got.ID != 2 {
		t.Fatalf("got %d, want overdue read", got.ID)
	}
	// At t=60 nothing is overdue: FIFO fallback -> write first.
	d.Push(r)
	if got := d.Pop(60, yes); got.ID != 1 {
		t.Fatalf("got %d, want FIFO order when nothing overdue", got.ID)
	}
}

func TestDeadlineEarliestOverdueWins(t *testing.T) {
	d := &Deadline{ReadDeadline: 100}
	a := req(1, iface.Read, iface.SourceApp)
	a.Submitted = 50 // deadline 150
	b := req(2, iface.Read, iface.SourceApp)
	b.Submitted = 0 // deadline 100
	d.Push(a)
	d.Push(b)
	if got := d.Pop(500, yes); got.ID != 2 {
		t.Fatalf("got %d, want earliest deadline", got.ID)
	}
}

func TestDeadlineZeroMeansNone(t *testing.T) {
	d := &Deadline{} // no deadlines at all
	a := req(1, iface.Write, iface.SourceApp)
	d.Push(a)
	if got := d.Pop(sim.Time(1<<40), yes); got.ID != 1 {
		t.Fatal("fallback did not serve request")
	}
}

func TestDeadlineWithPriorityFallback(t *testing.T) {
	d := &Deadline{ReadDeadline: 1 * sim.Time(sim.Second).Sub(0), Fallback: &Priority{Prefer: PreferReads}}
	w := req(1, iface.Write, iface.SourceApp)
	r := req(2, iface.Read, iface.SourceApp)
	d.Push(w)
	d.Push(r)
	if got := d.Pop(0, yes); got.ID != 2 {
		t.Fatalf("got %d, want fallback to prefer reads", got.ID)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after one pop", d.Len())
	}
	if got := d.Pop(0, yes); got.ID != 1 {
		t.Fatalf("second pop = %d", got.ID)
	}
}

func TestDeadlineInternal(t *testing.T) {
	d := &Deadline{InternalDeadline: 100}
	g := req(1, iface.Write, iface.SourceGC)
	g.Submitted = 0
	a := req(2, iface.Write, iface.SourceApp)
	a.Submitted = 0
	d.Push(a)
	d.Push(g)
	if got := d.Pop(150, yes); got.ID != 1 {
		t.Fatalf("got %d, want overdue GC write", got.ID)
	}
}

func TestFairAlternatesSources(t *testing.T) {
	f := &Fair{}
	for i := 0; i < 3; i++ {
		f.Push(req(uint64(10+i), iface.Write, iface.SourceApp))
		f.Push(req(uint64(20+i), iface.Write, iface.SourceGC))
	}
	var srcs []iface.Source
	for f.Len() > 0 {
		srcs = append(srcs, f.Pop(0, yes).Source)
	}
	// Weight 1 each: app, gc, app, gc, ...
	for i := 1; i < len(srcs); i++ {
		if srcs[i] == srcs[i-1] {
			t.Fatalf("fair policy served %v twice in a row: %v", srcs[i], srcs)
		}
	}
}

func TestFairWeights(t *testing.T) {
	f := &Fair{}
	f.Weights[iface.SourceApp] = 2
	for i := 0; i < 4; i++ {
		f.Push(req(uint64(10+i), iface.Write, iface.SourceApp))
	}
	for i := 0; i < 2; i++ {
		f.Push(req(uint64(20+i), iface.Write, iface.SourceGC))
	}
	var srcs []iface.Source
	for f.Len() > 0 {
		srcs = append(srcs, f.Pop(0, yes).Source)
	}
	want := []iface.Source{iface.SourceApp, iface.SourceApp, iface.SourceGC, iface.SourceApp, iface.SourceApp, iface.SourceGC}
	for i := range want {
		if srcs[i] != want[i] {
			t.Fatalf("weighted order %v, want %v", srcs, want)
		}
	}
}

func TestFairSkipsEmptySources(t *testing.T) {
	f := &Fair{}
	f.Push(req(1, iface.Write, iface.SourceWL))
	if r := f.Pop(0, yes); r == nil || r.ID != 1 {
		t.Fatal("fair policy starved the only source")
	}
}

func TestPolicyNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{
		&FIFO{},
		&Priority{Prefer: PreferReads},
		&Priority{Prefer: PreferWrites},
		&Deadline{},
		&Fair{},
	} {
		if names[p.Name()] {
			t.Fatalf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}
