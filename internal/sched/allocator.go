package sched

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// LUNView is the per-LUN state an Allocator sees when placing a write:
// whether the LUN can accept an operation right now, when it frees up, and
// whether the block manager can hand out a page there for this request's
// stream.
type LUNView struct {
	Busy     bool     // an operation is in flight on the LUN
	FreeAt   sim.Time // when current reservations drain
	CanAlloc bool     // block manager has room for this stream
	Queued   int      // requests already bound to this LUN and waiting
}

// Allocator decides which LUN a write lands on. For page-mapped FTLs any
// LUN is legal, so placement is purely a scheduling decision: it determines
// how well the workload spreads over the array's parallelism.
type Allocator interface {
	Name() string
	// PickLUN returns the chosen LUN for the request, or ok=false if no LUN
	// can take it now. The views slice is a scratch buffer owned by the
	// caller, valid only for the duration of the call: implementations must
	// not retain it.
	PickLUN(r *iface.Request, views []LUNView) (lun int, ok bool)
}

// RoundRobin statically rotates across LUNs, skipping ones that cannot
// accept the write.
type RoundRobin struct {
	next int
}

// Name implements Allocator.
func (*RoundRobin) Name() string { return "roundrobin" }

// Pos returns the rotation position, for device-state snapshots.
func (rr *RoundRobin) Pos() int { return rr.next }

// SetPos restores the rotation position from a snapshot.
func (rr *RoundRobin) SetPos(n int) { rr.next = n }

// PickLUN implements Allocator.
func (rr *RoundRobin) PickLUN(_ *iface.Request, views []LUNView) (int, bool) {
	n := len(views)
	for i := 0; i < n; i++ {
		lun := (rr.next + i) % n
		v := views[lun]
		if !v.Busy && v.CanAlloc {
			rr.next = (lun + 1) % n
			return lun, true
		}
	}
	return 0, false
}

// LeastLoaded picks the allocatable idle LUN whose reservations drain
// soonest, greedily balancing queue pressure across the array.
type LeastLoaded struct{}

// Name implements Allocator.
func (LeastLoaded) Name() string { return "leastloaded" }

// PickLUN implements Allocator.
func (LeastLoaded) PickLUN(_ *iface.Request, views []LUNView) (int, bool) {
	best := -1
	for lun, v := range views {
		if v.Busy || !v.CanAlloc {
			continue
		}
		if best < 0 ||
			v.Queued < views[best].Queued ||
			(v.Queued == views[best].Queued && v.FreeAt < views[best].FreeAt) {
			best = lun
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Striped statically maps each logical page to LUN = LPN mod N, the layout a
// RAID-like design would use. It sacrifices placement freedom (a busy stripe
// blocks its writes) but keeps any LPN's location predictable — the paper's
// example of how the mapping scheme can restrict the scheduler.
type Striped struct{}

// Name implements Allocator.
func (Striped) Name() string { return "striped" }

// PickLUN implements Allocator.
func (Striped) PickLUN(r *iface.Request, views []LUNView) (int, bool) {
	lun := int(int64(r.LPN) % int64(len(views)))
	v := views[lun]
	if v.Busy || !v.CanAlloc {
		return 0, false
	}
	return lun, true
}
