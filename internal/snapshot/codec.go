package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"eagletree/internal/controller"
	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
	"eagletree/internal/wl"
	"eagletree/internal/workload"
)

// The binary layout is: 7 magic bytes, 1 version byte, a varint-encoded
// payload, and a little-endian CRC32 (IEEE) of the payload. The CRC is
// verified before any field is parsed, so corruption anywhere in the payload
// is reported as ErrCorrupt rather than as a misleading field error.

// Version 2 appended reliability counters and optional fault-model state to
// the controller section. Version 1 snapshots are rejected; the disk state
// cache rebuilds undecodable entries, so no migration is needed.
const (
	magic   = "EGTSNAP"
	version = 2
)

// Errors reported by Decode. Wrapped with detail; match with errors.Is.
var (
	// ErrNotSnapshot marks input that does not start with the format magic.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrVersion marks a snapshot written by an unknown format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated marks input shorter than its own structure promises.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrCorrupt marks a payload whose checksum does not match.
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// Encode serializes the state to the versioned binary format.
//
//eagletree:snapshot encode DeviceState EngineState
func Encode(ds *DeviceState) []byte {
	e := &enc{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, magic...)
	e.b = append(e.b, version)
	start := len(e.b)

	e.meta(ds.Meta)
	e.time(ds.Engine.Now)
	e.u64(ds.Engine.Seq)
	e.u64(ds.Engine.Fired)
	e.osStats(&ds.OS)
	e.runner(&ds.Runner)
	e.controller(&ds.Controller)

	sum := crc32.ChecksumIEEE(e.b[start:])
	e.b = binary.LittleEndian.AppendUint32(e.b, sum)
	return e.b
}

// Decode parses a snapshot produced by Encode, verifying magic, version and
// checksum before touching any field.
//
//eagletree:snapshot decode DeviceState EngineState
func Decode(data []byte) (*DeviceState, error) {
	if len(data) < len(magic)+1 || string(data[:len(magic)]) != magic {
		return nil, ErrNotSnapshot
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, version)
	}
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: no room for checksum", ErrTruncated)
	}
	payload := data[len(magic)+1 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}

	d := &dec{b: payload}
	ds := &DeviceState{}
	d.metaInto(&ds.Meta)
	ds.Engine.Now = d.time()
	ds.Engine.Seq = d.u64()
	ds.Engine.Fired = d.u64()
	d.osStatsInto(&ds.OS)
	d.runnerInto(&ds.Runner)
	d.controllerInto(&ds.Controller)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return ds, nil
}

// Verify checks that data is a complete, well-formed snapshot — magic,
// version, checksum and every structural field — without handing the decoded
// state to the caller. Transports use it to validate encoded snapshots
// received from another process before admitting them to a state cache; the
// errors are Decode's typed errors.
func Verify(data []byte) error {
	_, err := Decode(data)
	return err
}

// --- encoder ---

type enc struct{ b []byte }

func (e *enc) u64(v uint64)    { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)     { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) int(v int)       { e.i64(int64(v)) }
func (e *enc) time(t sim.Time) { e.i64(int64(t)) }
func (e *enc) f64(v float64)   { e.fix64(math.Float64bits(v)) }
func (e *enc) fix64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string)    { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) raw(p []byte)    { e.u64(uint64(len(p))); e.b = append(e.b, p...) }
func (e *enc) rng(s [4]uint64) { e.fix64(s[0]); e.fix64(s[1]); e.fix64(s[2]); e.fix64(s[3]) }

func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

//eagletree:snapshot encode Meta flash.Geometry
func (e *enc) meta(m Meta) {
	g := m.Geometry
	e.int(g.Channels)
	e.int(g.LUNsPerChannel)
	e.int(g.BlocksPerLUN)
	e.int(g.PagesPerBlock)
	e.int(g.PageSize)
	e.str(m.Mapping)
	e.int(m.LogicalPages)
	e.u64(m.Seed)
}

//eagletree:snapshot encode osched.Stats
func (e *enc) osStats(s *osched.Stats) {
	e.u64(s.Submitted)
	e.u64(s.Issued)
	e.u64(s.Completed)
	e.int(s.MaxPending)
	e.int(s.MaxInFlight)
}

//eagletree:snapshot encode workload.RunnerState
func (e *enc) runner(r *workload.RunnerState) {
	e.rng(r.RNG)
	e.u64(r.NextReqID)
	e.int(r.NextThreadID)
}

//eagletree:snapshot encode controller.State controller.Counters controller.Reliability
//eagletree:snapshot encode controller.ThreadPrioEntry controller.LocalityEntry controller.TempHintEntry
//eagletree:snapshot encode hotcold.MBFState fault.State
func (e *enc) controller(st *controller.State) {
	c := st.Counters
	for _, v := range []uint64{c.AppReads, c.AppWrites, c.AppTrims, c.UnmappedReads,
		c.GCMigratedPages, c.GCErases, c.WLMigratedPages, c.BufferedWrites, c.BufferStalls} {
		e.u64(v)
	}
	e.u64(st.NextID)
	e.u64(st.Completions)
	e.u64(st.OpsSinceScan)
	e.array(&st.Array)
	e.blockManager(&st.BlockManager)
	switch {
	case st.DFTL != nil:
		e.b = append(e.b, 1)
		e.dftl(st.DFTL)
	case st.PageMap != nil:
		e.b = append(e.b, 0)
		e.pageMap(st.PageMap)
	default:
		panic("snapshot: controller state carries no mapper")
	}
	e.gcState(&st.GC)
	e.wlState(&st.WL)

	e.u64(uint64(len(st.ThreadPrio)))
	for _, h := range st.ThreadPrio {
		e.int(h.Thread)
		e.int(int(h.Prio))
	}
	e.u64(uint64(len(st.Locality)))
	for _, h := range st.Locality {
		e.i64(int64(h.LPN))
		e.int(h.Group)
	}
	e.u64(uint64(len(st.TempHints)))
	for _, h := range st.TempHints {
		e.i64(int64(h.LPN))
		e.int(int(h.Temp))
	}
	e.u64(uint64(len(st.WLCold)))
	for _, lpn := range st.WLCold {
		e.i64(int64(lpn))
	}

	e.bool(st.Detector != nil)
	if st.Detector != nil {
		e.u64(uint64(len(st.Detector.Filters)))
		for _, bits := range st.Detector.Filters {
			e.u64(uint64(len(bits)))
			for _, w := range bits {
				e.fix64(w)
			}
		}
		e.int(st.Detector.Cur)
		e.int(st.Detector.SinceTurn)
		e.u64(st.Detector.Writes)
	}
	e.bool(st.GCRandomRNG != nil)
	if st.GCRandomRNG != nil {
		e.rng(*st.GCRandomRNG)
	}
	e.bool(st.AllocRRState != nil)
	if st.AllocRRState != nil {
		e.int(*st.AllocRRState)
	}
	r := st.Reliability
	e.u64(r.Retries)
	e.u64(r.Relocations)
	e.u64(r.EraseFailures)
	e.u64(r.GrownBadBlocks)
	e.bool(st.Fault != nil)
	if st.Fault != nil {
		e.rng(st.Fault.RNG)
		e.bool(st.Fault.Fired)
	}
}

//eagletree:snapshot encode gc.CollectorState
func (e *enc) gcState(cs *gc.CollectorState) {
	e.u64(uint64(len(cs.Triggered)))
	for _, v := range cs.Triggered {
		e.u64(v)
	}
}

//eagletree:snapshot encode wl.LevelerState
func (e *enc) wlState(ws *wl.LevelerState) {
	e.u64(ws.Scans)
	e.u64(ws.Migrated)
	e.u64(ws.TotalErases)
	e.f64(ws.ObservedAvg)
}

//eagletree:snapshot encode flash.ArrayState flash.BlockMeta flash.Counters
func (e *enc) array(a *flash.ArrayState) {
	pages := make([]byte, len(a.Pages))
	for i, p := range a.Pages {
		pages[i] = byte(p)
	}
	e.raw(pages)
	e.u64(uint64(len(a.Blocks)))
	for _, b := range a.Blocks {
		e.int(b.EraseCount)
		e.time(b.LastErase)
		e.int(b.ValidPages)
		e.int(b.WritePtr)
		e.bool(b.Bad)
	}
	e.u64(uint64(len(a.FreePerLUN)))
	for _, v := range a.FreePerLUN {
		e.int(v)
	}
	e.u64(a.Counters.Reads)
	e.u64(a.Counters.Writes)
	e.u64(a.Counters.Erases)
	e.u64(a.Counters.Copybacks)
	e.resources(a.Channels)
	e.resources(a.LUNs)
}

//eagletree:snapshot encode flash.ResourceState flash.Interval
func (e *enc) resources(rs []flash.ResourceState) {
	e.u64(uint64(len(rs)))
	for _, r := range rs {
		e.u64(uint64(len(r.Intervals)))
		for _, iv := range r.Intervals {
			e.time(iv.Start)
			e.time(iv.End)
		}
	}
}

//eagletree:snapshot encode ftl.BlockManagerState ftl.LUNAllocState ftl.OpenBlockState
func (e *enc) blockManager(bm *ftl.BlockManagerState) {
	e.u64(uint64(len(bm.LUNs)))
	for _, l := range bm.LUNs {
		e.u64(uint64(len(l.Free)))
		for _, b := range l.Free {
			e.int(b)
		}
		e.u64(uint64(len(l.Open)))
		for _, ob := range l.Open {
			e.int(int(ob.Stream))
			e.int(ob.Block)
			e.int(ob.Next)
		}
	}
}

//eagletree:snapshot encode ftl.PageMapState
func (e *enc) pageMap(pm *ftl.PageMapState) {
	e.u64(uint64(len(pm.Forward)))
	for _, v := range pm.Forward {
		e.i64(int64(v))
	}
	e.u64(uint64(len(pm.Reverse)))
	for _, v := range pm.Reverse {
		e.i64(v)
	}
	e.int(pm.Mapped)
}

//eagletree:snapshot encode ftl.DFTLState ftl.CMTEntryState ftl.GTDEntryState
//eagletree:snapshot encode ftl.RingBlockState ftl.DFTLStats flash.PPA flash.BlockID
func (e *enc) dftl(d *ftl.DFTLState) {
	e.pageMap(&d.Truth)
	e.u64(uint64(len(d.CMT)))
	for _, c := range d.CMT {
		e.i64(int64(c.LPN))
		e.bool(c.Dirty)
	}
	e.u64(uint64(len(d.GTD)))
	for _, g := range d.GTD {
		e.int(g.TVPN)
		e.int(g.PPA.LUN)
		e.int(g.PPA.Block)
		e.int(g.PPA.Page)
	}
	e.u64(uint64(len(d.Ring)))
	for _, rb := range d.Ring {
		e.int(rb.ID.LUN)
		e.int(rb.ID.Block)
		e.int(rb.WritePtr)
		e.int(rb.Live)
		e.u64(uint64(len(rb.TVPNs)))
		for _, tv := range rb.TVPNs {
			e.i64(int64(tv))
		}
	}
	e.int(d.Cur)
	s := d.Stats
	for _, v := range []uint64{s.Hits, s.Misses, s.CleanEvicts, s.DirtyEvicts,
		s.TransReads, s.TransWrites, s.TransErases} {
		e.u64(v)
	}
}

// --- decoder ---

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: at offset %d", ErrTruncated, d.off)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int       { return int(d.i64()) }
func (d *dec) time() sim.Time { return sim.Time(d.i64()) }
func (d *dec) f64() float64   { return math.Float64frombits(d.fix64()) }

func (d *dec) fix64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *dec) str() string {
	n := d.count(len(d.b))
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) raw() []byte {
	n := d.count(len(d.b))
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	p := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return p
}

// count reads a length prefix and bounds it by what the remaining input
// could possibly hold, so corrupt counts cannot trigger huge allocations.
func (d *dec) count(max int) int {
	v := d.u64()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *dec) rng() (s [4]uint64) {
	s[0], s[1], s[2], s[3] = d.fix64(), d.fix64(), d.fix64(), d.fix64()
	return s
}

//eagletree:snapshot decode Meta flash.Geometry
func (d *dec) metaInto(m *Meta) {
	m.Geometry.Channels = d.int()
	m.Geometry.LUNsPerChannel = d.int()
	m.Geometry.BlocksPerLUN = d.int()
	m.Geometry.PagesPerBlock = d.int()
	m.Geometry.PageSize = d.int()
	m.Mapping = d.str()
	m.LogicalPages = d.int()
	m.Seed = d.u64()
}

//eagletree:snapshot decode osched.Stats
func (d *dec) osStatsInto(s *osched.Stats) {
	s.Submitted = d.u64()
	s.Issued = d.u64()
	s.Completed = d.u64()
	s.MaxPending = d.int()
	s.MaxInFlight = d.int()
}

//eagletree:snapshot decode workload.RunnerState
func (d *dec) runnerInto(r *workload.RunnerState) {
	r.RNG = d.rng()
	r.NextReqID = d.u64()
	r.NextThreadID = d.int()
}

//eagletree:snapshot decode controller.State controller.Counters controller.Reliability
//eagletree:snapshot decode controller.ThreadPrioEntry controller.LocalityEntry controller.TempHintEntry
//eagletree:snapshot decode hotcold.MBFState fault.State
func (d *dec) controllerInto(st *controller.State) {
	c := &st.Counters
	for _, p := range []*uint64{&c.AppReads, &c.AppWrites, &c.AppTrims, &c.UnmappedReads,
		&c.GCMigratedPages, &c.GCErases, &c.WLMigratedPages, &c.BufferedWrites, &c.BufferStalls} {
		*p = d.u64()
	}
	st.NextID = d.u64()
	st.Completions = d.u64()
	st.OpsSinceScan = d.u64()
	d.arrayInto(&st.Array)
	d.blockManagerInto(&st.BlockManager)
	if d.err != nil {
		return
	}
	switch tag := d.bool(); tag {
	case true:
		st.DFTL = &ftl.DFTLState{}
		d.dftlInto(st.DFTL)
	default:
		st.PageMap = &ftl.PageMapState{}
		d.pageMapInto(st.PageMap)
	}
	d.gcStateInto(&st.GC)
	d.wlStateInto(&st.WL)

	if n := d.count(len(d.b)); n > 0 {
		st.ThreadPrio = make([]controller.ThreadPrioEntry, n)
		for i := range st.ThreadPrio {
			st.ThreadPrio[i] = controller.ThreadPrioEntry{Thread: d.int(), Prio: iface.Priority(d.int())}
		}
	}
	if n := d.count(len(d.b)); n > 0 {
		st.Locality = make([]controller.LocalityEntry, n)
		for i := range st.Locality {
			st.Locality[i] = controller.LocalityEntry{LPN: iface.LPN(d.i64()), Group: d.int()}
		}
	}
	if n := d.count(len(d.b)); n > 0 {
		st.TempHints = make([]controller.TempHintEntry, n)
		for i := range st.TempHints {
			st.TempHints[i] = controller.TempHintEntry{LPN: iface.LPN(d.i64()), Temp: iface.Temperature(d.int())}
		}
	}
	if n := d.count(len(d.b)); n > 0 {
		st.WLCold = make([]iface.LPN, n)
		for i := range st.WLCold {
			st.WLCold[i] = iface.LPN(d.i64())
		}
	}

	if d.bool() {
		det := &hotcold.MBFState{}
		det.Filters = make([][]uint64, d.count(len(d.b)))
		for i := range det.Filters {
			bits := make([]uint64, d.count(len(d.b)/8+1))
			for j := range bits {
				bits[j] = d.fix64()
			}
			det.Filters[i] = bits
		}
		det.Cur = d.int()
		det.SinceTurn = d.int()
		det.Writes = d.u64()
		st.Detector = det
	}
	if d.bool() {
		s := d.rng()
		st.GCRandomRNG = &s
	}
	if d.bool() {
		v := d.int()
		st.AllocRRState = &v
	}
	st.Reliability.Retries = d.u64()
	st.Reliability.Relocations = d.u64()
	st.Reliability.EraseFailures = d.u64()
	st.Reliability.GrownBadBlocks = d.u64()
	if d.bool() {
		fs := &fault.State{}
		fs.RNG = d.rng()
		fs.Fired = d.bool()
		st.Fault = fs
	}
}

//eagletree:snapshot decode gc.CollectorState
func (d *dec) gcStateInto(cs *gc.CollectorState) {
	cs.Triggered = make([]uint64, d.count(len(d.b)))
	for i := range cs.Triggered {
		cs.Triggered[i] = d.u64()
	}
}

//eagletree:snapshot decode wl.LevelerState
func (d *dec) wlStateInto(ws *wl.LevelerState) {
	ws.Scans = d.u64()
	ws.Migrated = d.u64()
	ws.TotalErases = d.u64()
	ws.ObservedAvg = d.f64()
}

//eagletree:snapshot decode flash.ArrayState flash.BlockMeta flash.Counters
func (d *dec) arrayInto(a *flash.ArrayState) {
	pages := d.raw()
	a.Pages = make([]flash.PageState, len(pages))
	for i, p := range pages {
		a.Pages[i] = flash.PageState(p)
	}
	a.Blocks = make([]flash.BlockMeta, d.count(len(d.b)))
	for i := range a.Blocks {
		a.Blocks[i] = flash.BlockMeta{
			EraseCount: d.int(),
			LastErase:  d.time(),
			ValidPages: d.int(),
			WritePtr:   d.int(),
			Bad:        d.bool(),
		}
	}
	a.FreePerLUN = make([]int, d.count(len(d.b)))
	for i := range a.FreePerLUN {
		a.FreePerLUN[i] = d.int()
	}
	a.Counters.Reads = d.u64()
	a.Counters.Writes = d.u64()
	a.Counters.Erases = d.u64()
	a.Counters.Copybacks = d.u64()
	a.Channels = d.resources()
	a.LUNs = d.resources()
}

//eagletree:snapshot decode flash.ResourceState flash.Interval
func (d *dec) resources() []flash.ResourceState {
	rs := make([]flash.ResourceState, d.count(len(d.b)))
	for i := range rs {
		ivs := make([]flash.Interval, d.count(len(d.b)))
		for j := range ivs {
			ivs[j] = flash.Interval{Start: d.time(), End: d.time()}
		}
		rs[i].Intervals = ivs
	}
	return rs
}

//eagletree:snapshot decode ftl.BlockManagerState ftl.LUNAllocState ftl.OpenBlockState
func (d *dec) blockManagerInto(bm *ftl.BlockManagerState) {
	bm.LUNs = make([]ftl.LUNAllocState, d.count(len(d.b)))
	for i := range bm.LUNs {
		l := &bm.LUNs[i]
		l.Free = make([]int, d.count(len(d.b)))
		for j := range l.Free {
			l.Free[j] = d.int()
		}
		if n := d.count(len(d.b)); n > 0 {
			l.Open = make([]ftl.OpenBlockState, n)
			for j := range l.Open {
				l.Open[j] = ftl.OpenBlockState{Stream: uint8(d.int()), Block: d.int(), Next: d.int()}
			}
		}
	}
}

//eagletree:snapshot decode ftl.PageMapState
func (d *dec) pageMapInto(pm *ftl.PageMapState) {
	pm.Forward = make([]int32, d.count(len(d.b)))
	for i := range pm.Forward {
		pm.Forward[i] = int32(d.i64())
	}
	pm.Reverse = make([]int64, d.count(len(d.b)))
	for i := range pm.Reverse {
		pm.Reverse[i] = d.i64()
	}
	pm.Mapped = d.int()
}

//eagletree:snapshot decode ftl.DFTLState ftl.CMTEntryState ftl.GTDEntryState
//eagletree:snapshot decode ftl.RingBlockState ftl.DFTLStats flash.PPA flash.BlockID
func (d *dec) dftlInto(df *ftl.DFTLState) {
	d.pageMapInto(&df.Truth)
	if n := d.count(len(d.b)); n > 0 {
		df.CMT = make([]ftl.CMTEntryState, n)
		for i := range df.CMT {
			df.CMT[i] = ftl.CMTEntryState{LPN: iface.LPN(d.i64()), Dirty: d.bool()}
		}
	}
	if n := d.count(len(d.b)); n > 0 {
		df.GTD = make([]ftl.GTDEntryState, n)
		for i := range df.GTD {
			df.GTD[i] = ftl.GTDEntryState{TVPN: d.int(),
				PPA: flash.PPA{LUN: d.int(), Block: d.int(), Page: d.int()}}
		}
	}
	df.Ring = make([]ftl.RingBlockState, d.count(len(d.b)))
	for i := range df.Ring {
		rb := &df.Ring[i]
		rb.ID = flash.BlockID{LUN: d.int(), Block: d.int()}
		rb.WritePtr = d.int()
		rb.Live = d.int()
		rb.TVPNs = make([]int32, d.count(len(d.b)))
		for j := range rb.TVPNs {
			rb.TVPNs[j] = int32(d.i64())
		}
	}
	df.Cur = d.int()
	s := &df.Stats
	for _, p := range []*uint64{&s.Hits, &s.Misses, &s.CleanEvicts, &s.DirtyEvicts,
		&s.TransReads, &s.TransWrites, &s.TransErases} {
		*p = d.u64()
	}
}
