package snapshot_test

import (
	"errors"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/osched"
	"eagletree/internal/snapshot"
	"eagletree/internal/workload"
)

func fuzzSeedConfig() core.Config {
	return core.Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 24, PagesPerBlock: 16, PageSize: 4096},
			Mapping:       controller.MapPageRAM,
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 8},
		Seed: 3,
	}
}

func fuzzSeedWorkload(st *core.Stack) {
	n := int64(st.LogicalPages())
	seq := st.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 8})
	st.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 8}, seq)
}

// fuzzSeedState builds the smallest stack worth snapshotting: a filled
// 1-channel device whose encoded form exercises every section of the codec.
func fuzzSeedState(tb testing.TB) *snapshot.DeviceState {
	tb.Helper()
	st, err := core.New(fuzzSeedConfig())
	if err != nil {
		tb.Fatal(err)
	}
	fuzzSeedWorkload(st)
	st.Run()
	ds, err := st.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

// FuzzDecode hammers the snapshot decoder with mutated and truncated inputs.
// The contract under test: Decode returns one of the codec's typed errors —
// ErrNotSnapshot, ErrVersion, ErrTruncated, ErrCorrupt — and never panics,
// never over-allocates on hostile length fields, and any input it accepts
// re-encodes without panicking. The committed corpus under
// testdata/fuzz/FuzzDecode seeds the interesting shapes: a whole valid
// snapshot, a truncation, a bit flip and a bare magic header.
func FuzzDecode(f *testing.F) {
	valid := snapshot.Encode(fuzzSeedState(f))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("EGTSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := snapshot.Decode(data)
		if err != nil {
			for _, typed := range []error{snapshot.ErrNotSnapshot, snapshot.ErrVersion,
				snapshot.ErrTruncated, snapshot.ErrCorrupt} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("Decode returned an untyped error: %v", err)
		}
		// The CRC gate means acceptance implies a genuinely well-formed
		// payload; such a state must survive re-encoding.
		snapshot.Encode(ds)
	})
}
