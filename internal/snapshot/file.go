package snapshot

import (
	"fmt"
	"os"
)

// WriteFile atomically writes the encoded state to path.
func WriteFile(path string, ds *DeviceState) error {
	return WriteRawFile(path, Encode(ds))
}

// WriteRawFile atomically writes already-encoded snapshot bytes: they land
// in a temporary sibling first, so a crash mid-write never leaves a
// truncated snapshot where a valid one is expected (state caches tolerate
// missing files, not half files).
func WriteRawFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadFile decodes a snapshot file written by WriteFile.
func ReadFile(path string) (*DeviceState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}
