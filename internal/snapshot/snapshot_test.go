package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/osched"
	"eagletree/internal/snapshot"
	"eagletree/internal/workload"
)

// agedState builds a small stack, ages it until garbage collection has run,
// and returns its snapshot. The returned state is "mid-GC" in the device-
// lifecycle sense: free space sits at the collection floor, blocks hold a
// mix of live and stale pages, open frontiers are partially programmed and
// the GC counters are non-zero.
func agedState(t *testing.T, mapping controller.MappingScheme) *snapshot.DeviceState {
	t.Helper()
	cfg := core.Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 40, PagesPerBlock: 16, PageSize: 4096},
			Mapping:       mapping,
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 16},
		Seed: 5,
	}
	if mapping == controller.MapDFTL {
		cfg.Controller.CMTEntries = 128
		cfg.Controller.ReservedTransBlocks = 3
	}
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 16}, seq)
	s.Run()
	if s.Controller.Counters().GCErases == 0 {
		t.Fatal("aging workload never triggered GC; snapshot would not cover mid-GC state")
	}
	ds, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRoundTripExact: encode → decode → encode must reproduce the state
// deep-equal and the bytes identical, including for a snapshot taken mid-GC
// (GC counters live, stale pages everywhere, partial open blocks).
func TestRoundTripExact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mapping controller.MappingScheme
	}{
		{"pagemap-mid-gc", controller.MapPageRAM},
		{"dftl-mid-gc", controller.MapDFTL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := agedState(t, tc.mapping)
			if ds.Controller.Counters.GCMigratedPages == 0 {
				t.Fatal("state carries no GC work")
			}
			data := snapshot.Encode(ds)
			got, err := snapshot.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ds, got) {
				t.Fatal("decoded state differs from the original")
			}
			if again := snapshot.Encode(got); !bytes.Equal(data, again) {
				t.Fatalf("re-encoded bytes differ: %d vs %d bytes", len(data), len(again))
			}
		})
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := snapshot.Encode(agedState(t, controller.MapPageRAM))
	data[0] = 'X'
	if _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("bad magic: got %v, want ErrNotSnapshot", err)
	}
	if _, err := snapshot.Decode([]byte("EG")); !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("short input: got %v, want ErrNotSnapshot", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := snapshot.Encode(agedState(t, controller.MapPageRAM))
	data[7] = 99 // version byte follows the 7-byte magic
	if _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("wrong version: got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := snapshot.Encode(agedState(t, controller.MapPageRAM))
	// Flip one byte in the middle of the payload: the checksum must catch it
	// before any field is interpreted.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := snapshot.Decode(corrupt); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("flipped byte: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := snapshot.Encode(agedState(t, controller.MapPageRAM))
	// Any truncation that leaves room for the trailer breaks the checksum;
	// cutting into the header is reported as truncation outright.
	for _, keep := range []int{len(data) - 1, len(data) / 2, 16} {
		if _, err := snapshot.Decode(data[:keep]); !errors.Is(err, snapshot.ErrCorrupt) && !errors.Is(err, snapshot.ErrTruncated) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrCorrupt or ErrTruncated", keep, err)
		}
	}
	if _, err := snapshot.Decode(data[:9]); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("header-only input: got %v, want ErrTruncated", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	ds := agedState(t, controller.MapPageRAM)
	path := filepath.Join(t.TempDir(), "dev.state")
	if err := snapshot.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Fatal("file round trip altered the state")
	}
	if _, err := snapshot.ReadFile(filepath.Join(t.TempDir(), "missing.state")); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
	// A corrupted file on disk must be rejected like corrupted bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.ReadFile(path); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("corrupted file: got %v, want ErrCorrupt", err)
	}
}
