// Package snapshot implements versioned binary serialization of a complete
// prepared simulation stack: flash block states and erase counts, FTL mapping
// tables (page map, or DFTL including CMT contents), block-manager free
// lists, GC and wear-leveling counters, write-buffer accounting, engine clock
// and thread/RNG origins.
//
// Snapshots are taken at quiescent points — every thread finished, the event
// queue drained — so no in-flight request or pending event ever needs to be
// serialized. Restoring a snapshot into a freshly built stack reproduces,
// bit for bit, the behavior of continuing the original stack: that is what
// lets experiment sweeps prepare (fill and age) a device once and reuse the
// state across dozens of variants, instead of paying the aging workload per
// variant.
//
// The on-disk format is magic + version byte, a varint-encoded payload, and
// a trailing CRC32. Truncated, corrupted or wrong-version inputs are
// detected and reported as typed errors.
//
//eagletree:canonical
//eagletree:typederrors
package snapshot

import (
	"eagletree/internal/controller"
	"eagletree/internal/flash"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
	"eagletree/internal/workload"
)

// Meta identifies the stack shape a snapshot was taken from, so restoring
// into an incompatible configuration fails loudly instead of corrupting the
// simulation.
type Meta struct {
	Geometry     flash.Geometry
	Mapping      string // mapper name: "pagemap" or "dftl"
	LogicalPages int
	Seed         uint64
}

// EngineState is the event engine's clock at the snapshot point. Seq is the
// event sequence counter: it breaks FIFO ties between same-instant events,
// so a restored run schedules with exactly the ordering the original would
// have used.
type EngineState struct {
	Now   sim.Time
	Seq   uint64
	Fired uint64
}

// DeviceState is the complete serializable state of one quiescent stack.
type DeviceState struct {
	Meta       Meta
	Engine     EngineState
	Controller controller.State
	OS         osched.Stats
	Runner     workload.RunnerState
}
