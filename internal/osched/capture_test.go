package osched

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// recordingCapture is a minimal Capture for tests; the real implementation
// lives in internal/trace.
type recordingCapture struct {
	at  []sim.Time
	lpn []iface.LPN
}

func (c *recordingCapture) Submitted(at sim.Time, r *iface.Request) {
	c.at = append(c.at, at)
	c.lpn = append(c.lpn, r.LPN)
}

func TestOSCaptureSeesEverySubmission(t *testing.T) {
	cap := &recordingCapture{}
	r := newOSRig(t, Config{QueueDepth: 2, Capture: cap})
	for i := 0; i < 8; i++ {
		r.submit(uint64(i+1), iface.Write, 0, iface.Tags{})
	}
	r.eng.RunUntilIdle()
	if len(cap.at) != 8 {
		t.Fatalf("capture saw %d submissions, want 8", len(cap.at))
	}
	for i, lpn := range cap.lpn {
		if lpn != iface.LPN(i+1) {
			t.Fatalf("capture position %d saw lpn %d, want %d", i, lpn, i+1)
		}
	}
}

// TestOSSubmitNilCaptureAllocs guards the capture hook's cost when disabled:
// the submit path must not allocate beyond amortized pool growth, so trace
// recording stays off the zero-alloc dispatch path.
func TestOSSubmitNilCaptureAllocs(t *testing.T) {
	eng := sim.NewEngine()
	dev := &quietDevice{eng: eng, latency: 10 * sim.Microsecond}
	dev.completeFn = func(a any) {
		r := a.(*iface.Request)
		r.Completed = eng.Now()
		dev.onComplete(r)
	}
	os, err := New(eng, dev, Config{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev.onComplete = os.Completed
	const batch = 128
	reqs := make([]*iface.Request, batch)
	for i := range reqs {
		reqs[i] = &iface.Request{}
	}
	var id uint64
	runBatch := func() {
		for _, req := range reqs {
			id++
			*req = iface.Request{ID: id, Type: iface.Read, LPN: iface.LPN(id % 64), Source: iface.SourceApp}
			os.Submit(req)
		}
		eng.RunUntilIdle()
	}
	runBatch() // warm the policy queue and event pool
	allocs := testing.AllocsPerRun(10, runBatch)
	if perIO := allocs / batch; perIO > 0.05 {
		t.Fatalf("OS submit path allocates %.3f objects per IO with capture off", perIO)
	}
}

// quietDevice completes requests through the pooled ScheduleCall path so the
// alloc guard above measures only the OS layer.
type quietDevice struct {
	eng        *sim.Engine
	latency    sim.Duration
	onComplete func(*iface.Request)
	completeFn func(any)
}

func (d *quietDevice) Submit(r *iface.Request) {
	d.eng.ScheduleCall(d.eng.Now().Add(d.latency), d.completeFn, r)
}
