package osched

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Policy orders the OS pending pool. Unlike the SSD-side scheduler, the OS
// has no hardware constraints: Pop simply returns the next request to issue,
// or nil when the pool is empty.
type Policy interface {
	Name() string
	Push(r *iface.Request)
	Pop(now sim.Time) *iface.Request
	Len() int
}

// FIFO issues requests strictly in submission order — the paper's default OS
// scheduling strategy.
type FIFO struct {
	items []*iface.Request
}

// Name implements Policy.
func (*FIFO) Name() string { return "os-fifo" }

// Push implements Policy.
func (f *FIFO) Push(r *iface.Request) { f.items = append(f.items, r) }

// Len implements Policy.
func (f *FIFO) Len() int { return len(f.items) }

// Pop implements Policy.
func (f *FIFO) Pop(sim.Time) *iface.Request {
	if len(f.items) == 0 {
		return nil
	}
	r := f.items[0]
	f.items = f.items[1:]
	return r
}

// Prio issues the highest-priority pending request first (by the
// open-interface priority tag), optionally preferring reads among equals.
// Ties break in submission order.
type Prio struct {
	// ReadsFirst breaks priority ties in favor of reads, the usual choice
	// when synchronous reads block application progress but writes do not.
	ReadsFirst bool

	items []*iface.Request
}

// Name implements Policy.
func (p *Prio) Name() string {
	if p.ReadsFirst {
		return "os-prio-reads"
	}
	return "os-prio"
}

// Push implements Policy.
func (p *Prio) Push(r *iface.Request) { p.items = append(p.items, r) }

// Len implements Policy.
func (p *Prio) Len() int { return len(p.items) }

func (p *Prio) score(r *iface.Request) int {
	s := int(r.Tags.Priority) * 10
	if p.ReadsFirst && r.Type == iface.Read {
		s++
	}
	return s
}

// Pop implements Policy.
func (p *Prio) Pop(sim.Time) *iface.Request {
	if len(p.items) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(p.items); i++ {
		if p.score(p.items[i]) > p.score(p.items[best]) {
			best = i
		}
	}
	r := p.items[best]
	p.items = append(p.items[:best], p.items[best+1:]...)
	return r
}

// Elevator serves pending requests in ascending LPN order, wrapping to the
// lowest address when the sweep passes the top — the classic one-way
// elevator (C-SCAN) of disk schedulers. On a rotating disk it minimizes
// seeks; on an SSD there is no head to move, so the ordering buys nothing
// and only adds position-dependent waiting. It is included exactly for that
// contrast: the paper opens with HDD performance contracts that SSDs break,
// and this is the scheduler-shaped version of that break.
type Elevator struct {
	items []*iface.Request
	head  iface.LPN // current sweep position
}

// Name implements Policy.
func (*Elevator) Name() string { return "os-elevator" }

// Push implements Policy.
func (e *Elevator) Push(r *iface.Request) { e.items = append(e.items, r) }

// Len implements Policy.
func (e *Elevator) Len() int { return len(e.items) }

// Pop implements Policy.
func (e *Elevator) Pop(sim.Time) *iface.Request {
	if len(e.items) == 0 {
		return nil
	}
	// Smallest LPN at or above the head; if none, wrap to the smallest.
	best, wrap := -1, -1
	for i, r := range e.items {
		if r.LPN >= e.head && (best < 0 || r.LPN < e.items[best].LPN) {
			best = i
		}
		if wrap < 0 || r.LPN < e.items[wrap].LPN {
			wrap = i
		}
	}
	if best < 0 {
		best = wrap
	}
	r := e.items[best]
	e.items = append(e.items[:best], e.items[best+1:]...)
	e.head = r.LPN
	return r
}

// CFQ is a completely-fair-queuing-like policy: threads are served
// round-robin, each getting up to Quantum consecutive IOs while it has any
// pending. It prevents one IO-hungry thread from starving the others.
type CFQ struct {
	// Quantum is how many consecutive IOs one thread may issue before the
	// turn passes. Zero means 4.
	Quantum int

	perThread map[int][]*iface.Request
	order     []int // round-robin order of known threads
	cur       int   // index into order
	used      int   // IOs issued in the current quantum
	total     int
}

// Name implements Policy.
func (*CFQ) Name() string { return "os-cfq" }

// Push implements Policy.
func (c *CFQ) Push(r *iface.Request) {
	if c.perThread == nil {
		c.perThread = make(map[int][]*iface.Request)
	}
	if _, known := c.perThread[r.Thread]; !known {
		c.order = append(c.order, r.Thread)
	}
	c.perThread[r.Thread] = append(c.perThread[r.Thread], r)
	c.total++
}

// Len implements Policy.
func (c *CFQ) Len() int { return c.total }

func (c *CFQ) quantum() int {
	if c.Quantum > 0 {
		return c.Quantum
	}
	return 4
}

// Pop implements Policy.
func (c *CFQ) Pop(sim.Time) *iface.Request {
	if c.total == 0 {
		return nil
	}
	n := len(c.order)
	for tried := 0; tried < n; tried++ {
		idx := (c.cur + tried) % n
		thread := c.order[idx]
		q := c.perThread[thread]
		if len(q) == 0 {
			continue
		}
		if tried != 0 {
			c.cur = idx
			c.used = 0
		}
		r := q[0]
		c.perThread[thread] = q[1:]
		c.total--
		c.used++
		if c.used >= c.quantum() {
			c.cur = (idx + 1) % n
			c.used = 0
		}
		return r
	}
	return nil
}
