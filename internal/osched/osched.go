// Package osched implements the operating-system IO scheduler layer: it
// manages IO requests incoming from multiple simulated concurrent threads,
// maintains a pool of pending IOs, and decides — based on a customizable
// scheduling policy — which IOs to issue next to the SSD, bounded by a
// configurable number of outstanding IOs (the OS queue depth).
//
// Once the SSD completes an IO it notifies the OS, which activates the
// dispatching thread's callback; the thread can respond by issuing more IOs.
// That interrupt-driven loop is how the paper's thread layer drives workloads.
//
//eagletree:typederrors
package osched

import (
	"errors"
	"fmt"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
)

// ErrConfig wraps every Config.Validate failure.
var ErrConfig = errors.New("osched: invalid configuration")

// Device is the SSD-facing interface the OS dispatches to. The controller
// implements it; completions flow back through (*OS).Completed, which the
// device owner must wire to the controller's completion hook.
type Device interface {
	Submit(r *iface.Request)
}

// Capture observes every request submitted to the OS layer — the app-level
// IO stream, since only application threads submit here; the controller's
// internal traffic never crosses this boundary. trace.Capture implements it
// to record replayable block traces.
type Capture interface {
	Submitted(at sim.Time, r *iface.Request)
}

// Config parameterizes the OS layer.
type Config struct {
	// Policy orders the pending pool. Nil means FIFO.
	Policy Policy
	// QueueDepth bounds the IOs outstanding at the SSD. Zero means 32, the
	// common block-layer default.
	QueueDepth int
	// Trace, when non-nil, records submission and issue events for every
	// request passing through the OS layer.
	Trace *stats.Trace
	// Capture, when non-nil, observes every submission (block-trace
	// recording). Nil costs a single pointer check per IO.
	Capture Capture
}

func (c *Config) withDefaults() {
	if c.Policy == nil {
		c.Policy = &FIFO{}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
}

// Validate reports configuration errors after defaults.
func (c *Config) Validate() error {
	if c.QueueDepth < 1 {
		return fmt.Errorf("%w: queue depth %d, must be >= 1", ErrConfig, c.QueueDepth)
	}
	return nil
}

// Stats aggregates OS-level counters.
type Stats struct {
	Submitted   uint64 // requests accepted from threads
	Issued      uint64 // requests dispatched to the SSD
	Completed   uint64 // completions delivered back
	MaxPending  int    // high-water mark of the pending pool
	MaxInFlight int    // high-water mark of SSD-outstanding IOs
}

// OS is the operating-system layer: per-thread IO submission, a pending pool
// ordered by the scheduling policy, and completion delivery to threads.
type OS struct {
	eng *sim.Engine
	dev Device
	cfg Config

	inFlight  int
	callbacks map[int]func(*iface.Request)
	pumpPend  bool
	pumpFn    func(any) // bound once so pumping never allocates
	stats     Stats
}

// New builds the OS layer over a device. Wire the controller's OnComplete to
// (*OS).Completed before running.
func New(eng *sim.Engine, dev Device, cfg Config) (*OS, error) {
	cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &OS{
		eng:       eng,
		dev:       dev,
		cfg:       cfg,
		callbacks: make(map[int]func(*iface.Request)),
	}
	o.pumpFn = func(any) {
		o.pumpPend = false
		o.dispatch()
	}
	return o, nil
}

// Policy returns the active scheduling policy.
func (o *OS) Policy() Policy { return o.cfg.Policy }

// QueueDepth returns the outstanding-IO bound.
func (o *OS) QueueDepth() int { return o.cfg.QueueDepth }

// Stats returns OS-level counters.
func (o *OS) Stats() Stats { return o.stats }

// RestoreStats overwrites the OS-level counters, continuing a snapshotted
// run's accounting (high-water marks included). Queues must be empty — the
// snapshot layer only restores quiescent stacks.
func (o *OS) RestoreStats(s Stats) { o.stats = s }

// Pending returns the number of requests waiting in the OS pool.
func (o *OS) Pending() int { return o.cfg.Policy.Len() }

// InFlight returns the number of requests outstanding at the SSD.
func (o *OS) InFlight() int { return o.inFlight }

// SetCallback registers the completion callback for one thread. Completions
// of requests whose Thread field matches are delivered to fn.
func (o *OS) SetCallback(thread int, fn func(*iface.Request)) {
	o.callbacks[thread] = fn
}

// RemoveCallback unregisters a thread, e.g. when it finishes.
func (o *OS) RemoveCallback(thread int) { delete(o.callbacks, thread) }

// Submit accepts a request from a thread, stamps its submission time, pools
// it and arms the dispatch pump.
func (o *OS) Submit(r *iface.Request) {
	if r.Submitted == 0 {
		r.Submitted = o.eng.Now()
	}
	o.stats.Submitted++
	if o.cfg.Trace != nil {
		o.cfg.Trace.Record(o.eng.Now(), r.ID, stats.StageSubmitted, r)
	}
	if o.cfg.Capture != nil {
		o.cfg.Capture.Submitted(o.eng.Now(), r)
	}
	o.cfg.Policy.Push(r)
	if p := o.cfg.Policy.Len(); p > o.stats.MaxPending {
		o.stats.MaxPending = p
	}
	o.pump()
}

// Completed receives a finished request from the SSD. It frees an
// outstanding slot, re-pumps the dispatch loop, and delivers the completion
// to the dispatching thread. Wire this to the controller's OnComplete.
func (o *OS) Completed(r *iface.Request) {
	o.inFlight--
	o.stats.Completed++
	o.pump()
	if fn, ok := o.callbacks[r.Thread]; ok {
		fn(r)
	}
}

// pump coalesces dispatching to the tail of the current event, like a real
// block layer running its queue after request insertion or an interrupt.
func (o *OS) pump() {
	if o.pumpPend {
		return
	}
	o.pumpPend = true
	o.eng.ScheduleCall(o.eng.Now(), o.pumpFn, nil)
}

func (o *OS) dispatch() {
	for o.inFlight < o.cfg.QueueDepth {
		r := o.cfg.Policy.Pop(o.eng.Now())
		if r == nil {
			return
		}
		r.Issued = o.eng.Now()
		o.inFlight++
		o.stats.Issued++
		if o.cfg.Trace != nil {
			o.cfg.Trace.Record(o.eng.Now(), r.ID, stats.StageIssued, r)
		}
		if o.inFlight > o.stats.MaxInFlight {
			o.stats.MaxInFlight = o.inFlight
		}
		o.dev.Submit(r)
	}
}
