package osched

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// fakeDevice completes every request after a fixed latency.
type fakeDevice struct {
	eng        *sim.Engine
	latency    sim.Duration
	onComplete func(*iface.Request)

	inFlight    int
	maxInFlight int
	order       []uint64
}

func (d *fakeDevice) Submit(r *iface.Request) {
	d.inFlight++
	if d.inFlight > d.maxInFlight {
		d.maxInFlight = d.inFlight
	}
	d.order = append(d.order, r.ID)
	done := d.eng.Now().Add(d.latency)
	d.eng.Schedule(done, func() {
		d.inFlight--
		r.Completed = done
		d.onComplete(r)
	})
}

type osRig struct {
	eng  *sim.Engine
	dev  *fakeDevice
	os   *OS
	done []*iface.Request
}

func newOSRig(t *testing.T, cfg Config) *osRig {
	t.Helper()
	r := &osRig{eng: sim.NewEngine()}
	r.dev = &fakeDevice{eng: r.eng, latency: 100 * sim.Microsecond}
	os, err := New(r.eng, r.dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.dev.onComplete = os.Completed
	r.os = os
	return r
}

func (r *osRig) submit(id uint64, t iface.ReqType, thread int, tags iface.Tags) *iface.Request {
	req := &iface.Request{ID: id, Type: t, LPN: iface.LPN(id), Thread: thread, Source: iface.SourceApp, Tags: tags}
	r.os.Submit(req)
	return req
}

func TestOSQueueDepthBoundsOutstanding(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 4})
	for i := 0; i < 32; i++ {
		r.submit(uint64(i+1), iface.Read, 0, iface.Tags{})
	}
	r.eng.RunUntilIdle()
	if r.dev.maxInFlight != 4 {
		t.Fatalf("device saw %d outstanding, queue depth is 4", r.dev.maxInFlight)
	}
	if got := r.os.Stats().Issued; got != 32 {
		t.Fatalf("issued %d of 32", got)
	}
	if got := r.os.Stats().Completed; got != 32 {
		t.Fatalf("completed %d of 32", got)
	}
}

func TestOSFIFOOrder(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1})
	for i := 0; i < 8; i++ {
		r.submit(uint64(i+1), iface.Write, 0, iface.Tags{})
	}
	r.eng.RunUntilIdle()
	for i, id := range r.dev.order {
		if id != uint64(i+1) {
			t.Fatalf("position %d got id %d, want %d", i, id, i+1)
		}
	}
}

func TestOSPrioPolicyPrefersHighPriority(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1, Policy: &Prio{}})
	// All submissions pool before the dispatch pump fires, so the
	// high-priority request must overtake everything submitted before it.
	r.submit(1, iface.Write, 0, iface.Tags{})
	for i := 0; i < 6; i++ {
		r.submit(uint64(10+i), iface.Write, 0, iface.Tags{})
	}
	r.submit(99, iface.Write, 0, iface.Tags{Priority: iface.PriorityHigh})
	r.eng.RunUntilIdle()
	if r.dev.order[0] != 99 {
		t.Fatalf("dispatch order %v: high-priority request not first", r.dev.order)
	}
}

func TestOSPrioReadsFirstBreaksTies(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1, Policy: &Prio{ReadsFirst: true}})
	r.submit(1, iface.Write, 0, iface.Tags{})
	r.submit(2, iface.Write, 0, iface.Tags{})
	r.submit(3, iface.Read, 0, iface.Tags{})
	r.eng.RunUntilIdle()
	if r.dev.order[0] != 3 {
		t.Fatalf("dispatch order %v: read did not overtake equal-priority writes", r.dev.order)
	}
}

func TestOSCFQRoundRobinsThreads(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1, Policy: &CFQ{Quantum: 2}})
	// Thread 0 floods; thread 1 submits two. With quantum 2 the pattern
	// must interleave 2-and-2 rather than serving thread 0 to exhaustion.
	for i := 0; i < 6; i++ {
		r.submit(uint64(i+1), iface.Write, 0, iface.Tags{})
	}
	r.submit(101, iface.Write, 1, iface.Tags{})
	r.submit(102, iface.Write, 1, iface.Tags{})
	r.eng.RunUntilIdle()
	// First dispatch happens before thread 1 submits? No: all submissions at
	// time 0, pump runs once after. Expect 1,2,101,102,3,4,5,6.
	want := []uint64{1, 2, 101, 102, 3, 4, 5, 6}
	for i, id := range r.dev.order {
		if id != want[i] {
			t.Fatalf("dispatch order %v, want %v", r.dev.order, want)
		}
	}
}

func TestOSCallbackDelivery(t *testing.T) {
	r := newOSRig(t, Config{})
	var thread0, thread1 int
	r.os.SetCallback(0, func(*iface.Request) { thread0++ })
	r.os.SetCallback(1, func(*iface.Request) { thread1++ })
	r.submit(1, iface.Read, 0, iface.Tags{})
	r.submit(2, iface.Read, 1, iface.Tags{})
	r.submit(3, iface.Read, 1, iface.Tags{})
	r.eng.RunUntilIdle()
	if thread0 != 1 || thread1 != 2 {
		t.Fatalf("callbacks: thread0=%d thread1=%d, want 1 and 2", thread0, thread1)
	}
}

func TestOSCallbackCanResubmit(t *testing.T) {
	// A thread that issues a new IO from its completion callback — the
	// paper's call_back() contract — must keep the pipeline going.
	r := newOSRig(t, Config{QueueDepth: 2})
	issued := 0
	r.os.SetCallback(0, func(done *iface.Request) {
		if issued < 10 {
			issued++
			r.submit(uint64(100+issued), iface.Read, 0, iface.Tags{})
		}
	})
	r.submit(1, iface.Read, 0, iface.Tags{})
	r.eng.RunUntilIdle()
	if got := r.os.Stats().Completed; got != 11 {
		t.Fatalf("completed %d, want 11 (1 seed + 10 chained)", got)
	}
}

func TestOSStampsTimes(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1})
	a := r.submit(1, iface.Read, 0, iface.Tags{})
	b := r.submit(2, iface.Read, 0, iface.Tags{})
	r.eng.RunUntilIdle()
	if a.Submitted != 0 || a.Issued != 0 {
		t.Fatalf("first request stamps: submitted=%v issued=%v", a.Submitted, a.Issued)
	}
	if b.Issued <= b.Submitted {
		t.Fatalf("second request issued at %v, submitted at %v: queueing not visible", b.Issued, b.Submitted)
	}
}

func TestOSValidation(t *testing.T) {
	if _, err := New(sim.NewEngine(), &fakeDevice{}, Config{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
}

func TestCFQSingleThreadDegeneratesToFIFO(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1, Policy: &CFQ{Quantum: 3}})
	for i := 0; i < 7; i++ {
		r.submit(uint64(i+1), iface.Write, 5, iface.Tags{})
	}
	r.eng.RunUntilIdle()
	for i, id := range r.dev.order {
		if id != uint64(i+1) {
			t.Fatalf("order %v not FIFO", r.dev.order)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{&FIFO{}, &Prio{}, &Prio{ReadsFirst: true}, &CFQ{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestElevatorSweepsAscending(t *testing.T) {
	r := newOSRig(t, Config{QueueDepth: 1, Policy: &Elevator{}})
	for i, lpn := range []uint64{50, 10, 30, 70, 20} {
		req := &iface.Request{ID: uint64(i + 1), Type: iface.Read, LPN: iface.LPN(lpn), Source: iface.SourceApp}
		r.os.Submit(req)
	}
	r.eng.RunUntilIdle()
	// All pooled before the pump: the sweep starts at 0 and ascends.
	want := []uint64{2, 5, 3, 1, 4} // LPNs 10, 20, 30, 50, 70
	for i, id := range r.dev.order {
		if id != want[i] {
			t.Fatalf("dispatch order %v, want %v", r.dev.order, want)
		}
	}
}

func TestElevatorWrapsAround(t *testing.T) {
	e := &Elevator{}
	push := func(id uint64, lpn iface.LPN) {
		e.Push(&iface.Request{ID: id, LPN: lpn})
	}
	push(1, 100)
	push(2, 5)
	if got := e.Pop(0); got.ID != 2 {
		t.Fatalf("first pop id %d, want 2 (lpn 5)", got.ID)
	}
	if got := e.Pop(0); got.ID != 1 {
		t.Fatalf("second pop id %d", got.ID)
	}
	// Head is now at 100; a new low request forces a wrap.
	push(3, 7)
	if got := e.Pop(0); got.ID != 3 {
		t.Fatalf("wrap pop id %d, want 3", got.ID)
	}
	if e.Pop(0) != nil {
		t.Fatal("empty elevator popped something")
	}
	if e.Name() == "" {
		t.Fatal("empty name")
	}
}
