package eagletree

// The benchmark harness regenerates every experiment of the paper's
// evaluation/demonstration (see DESIGN.md's experiment index E1–E12). Each
// benchmark runs one full design-space sweep per iteration at the small
// scale and reports the headline metrics as custom benchmark outputs, so
//
//	go test -bench=. -benchmem
//
// reproduces the shape of every figure: who wins, by what factor, where the
// crossovers fall. The cmd/sweep tool runs the same definitions at full
// scale and prints the complete tables recorded in EXPERIMENTS.md.

import (
	"testing"

	"eagletree/internal/experiment"
)

// runSweep executes one predefined experiment per benchmark iteration and
// returns the last results for metric extraction.
func runSweep(b *testing.B, def experiment.Definition) experiment.Results {
	b.Helper()
	var res experiment.Results
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Run(def)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func row(b *testing.B, res experiment.Results, label string) ResultRow {
	b.Helper()
	for _, r := range res.Rows {
		if r.Label == label {
			return r
		}
	}
	b.Fatalf("experiment %s has no variant %q", res.Name, label)
	return ResultRow{}
}

// BenchmarkE1Parallelism — Fig. 1 hardware design space: throughput vs
// channels × LUNs under parallel random writes. Paper shape: scales with
// the LUN count until the channel saturates.
func BenchmarkE1Parallelism(b *testing.B) {
	res := runSweep(b, experiment.E1Parallelism(experiment.Small))
	lo := row(b, res, "ch=1,luns/ch=1").Report.Throughput
	hi := row(b, res, "ch=4,luns/ch=4").Report.Throughput
	b.ReportMetric(lo, "IOPS_1LUN")
	b.ReportMetric(hi, "IOPS_16LUN")
	b.ReportMetric(hi/lo, "speedup")
	if hi <= lo {
		b.Fatal("parallelism speedup missing")
	}
}

// BenchmarkE2SchedPolicy — §3: read/write prioritization trade-off on a
// mixed workload. Paper shape: reads-first cuts read latency, inflates
// write latency; no single winner.
func BenchmarkE2SchedPolicy(b *testing.B) {
	res := runSweep(b, experiment.E2SchedPolicy(experiment.Small))
	fifo := row(b, res, "fifo").Report
	rf := row(b, res, "reads-first").Report
	b.ReportMetric(fifo.ReadLatency.Mean.Micros(), "fifo_read_us")
	b.ReportMetric(rf.ReadLatency.Mean.Micros(), "readsfirst_read_us")
	b.ReportMetric(fifo.WriteLatency.Mean.Micros(), "fifo_write_us")
	b.ReportMetric(rf.WriteLatency.Mean.Micros(), "readsfirst_write_us")
}

// BenchmarkE3GCGreediness — §2.2 GC greediness sweep. Paper shape: lazier
// GC lowers write amplification but stretches the write tail.
func BenchmarkE3GCGreediness(b *testing.B) {
	res := runSweep(b, experiment.E3GCGreediness(experiment.Small))
	lazy := row(b, res, "greediness=1").Report
	greedy := row(b, res, "greediness=8").Report
	b.ReportMetric(lazy.WriteAmplification, "WA_lazy")
	b.ReportMetric(greedy.WriteAmplification, "WA_greedy")
	b.ReportMetric(lazy.WriteLatency.P99.Micros(), "p99_lazy_us")
	b.ReportMetric(greedy.WriteLatency.P99.Micros(), "p99_greedy_us")
}

// BenchmarkE4WearLeveling — §2.2 wear leveling modes under skewed
// overwrite. Paper shape: WL narrows the erase-count spread at a small
// throughput cost.
func BenchmarkE4WearLeveling(b *testing.B) {
	res := runSweep(b, experiment.E4WearLeveling(experiment.Small))
	off := row(b, res, "wl=off").Report
	full := row(b, res, "wl=static+dynamic").Report
	b.ReportMetric(float64(off.Wear.Spread()), "spread_off")
	b.ReportMetric(float64(full.Wear.Spread()), "spread_wl")
	b.ReportMetric(off.Throughput, "IOPS_off")
	b.ReportMetric(full.Throughput, "IOPS_wl")
}

// BenchmarkE5Mapping — §2.2 page map vs DFTL across CMT sizes. Paper shape:
// DFTL converges to the page map as the CMT grows.
func BenchmarkE5Mapping(b *testing.B) {
	res := runSweep(b, experiment.E5Mapping(experiment.Small))
	pm := row(b, res, "pagemap").Report
	small := row(b, res, "dftl,cmt=128").Report
	big := row(b, res, "dftl,cmt=8192").Report
	b.ReportMetric(pm.Throughput, "IOPS_pagemap")
	b.ReportMetric(small.Throughput, "IOPS_dftl_cmt128")
	b.ReportMetric(big.Throughput, "IOPS_dftl_cmt8192")
	b.ReportMetric(float64(small.TransReads+small.TransWrites), "transIO_cmt128")
}

// BenchmarkE6PriorityTag — §2.2 open-interface priorities. Paper shape: the
// tag slashes tagged-IO latency versus block-device mode.
func BenchmarkE6PriorityTag(b *testing.B) {
	res := runSweep(b, experiment.E6PriorityTag(experiment.Small))
	locked := row(b, res, "block-device").Report
	open := row(b, res, "open-interface").Report
	b.ReportMetric(locked.ReadLatency.Mean.Micros(), "read_us_locked")
	b.ReportMetric(open.ReadLatency.Mean.Micros(), "read_us_open")
	if open.ReadLatency.Mean >= locked.ReadLatency.Mean {
		b.Fatal("priority tag bought nothing")
	}
}

// BenchmarkE7UpdateLocality — §2.2 update-locality hints on a file-system
// workload. Paper shape: co-located files die together, cutting GC work.
func BenchmarkE7UpdateLocality(b *testing.B) {
	res := runSweep(b, experiment.E7UpdateLocality(experiment.Small))
	un := row(b, res, "untagged").Report
	tagged := row(b, res, "locality-tags").Report
	b.ReportMetric(un.WriteAmplification, "WA_untagged")
	b.ReportMetric(tagged.WriteAmplification, "WA_tagged")
	b.ReportMetric(float64(un.GCMigratedPages), "gcPages_untagged")
	b.ReportMetric(float64(tagged.GCMigratedPages), "gcPages_tagged")
}

// BenchmarkE8Temperature — §2.2 temperature sources. Paper shape: hot/cold
// separation lowers WA; oracle ≥ detector ≥ none.
func BenchmarkE8Temperature(b *testing.B) {
	res := runSweep(b, experiment.E8Temperature(experiment.Small))
	none := row(b, res, "none").Report
	bloom := row(b, res, "bloom-detector").Report
	oracle := row(b, res, "oracle-tags").Report
	b.ReportMetric(none.WriteAmplification, "WA_none")
	b.ReportMetric(bloom.WriteAmplification, "WA_bloom")
	b.ReportMetric(oracle.WriteAmplification, "WA_oracle")
}

// BenchmarkE9QueueDepth — §2.1 outstanding-IO sweep. Paper shape:
// throughput rises to a knee at array saturation; latency keeps growing.
func BenchmarkE9QueueDepth(b *testing.B) {
	res := runSweep(b, experiment.E9QueueDepth(experiment.Small))
	d1 := row(b, res, "depth=1").Report
	d8 := row(b, res, "depth=8").Report
	d64 := row(b, res, "depth=64").Report
	b.ReportMetric(d1.Throughput, "IOPS_d1")
	b.ReportMetric(d8.Throughput, "IOPS_d8")
	b.ReportMetric(d64.Throughput, "IOPS_d64")
	b.ReportMetric(d64.ReadLatency.Mean.Micros(), "read_us_d64")
}

// BenchmarkE10AdvancedCmds — §2.2 copyback and interleaving. Paper shape:
// copyback accelerates GC; interleaving overlaps bus and array phases.
func BenchmarkE10AdvancedCmds(b *testing.B) {
	res := runSweep(b, experiment.E10AdvancedCmds(experiment.Small))
	base := row(b, res, "baseline").Report
	both := row(b, res, "copyback+interleaving").Report
	b.ReportMetric(base.Throughput, "IOPS_baseline")
	b.ReportMetric(both.Throughput, "IOPS_advanced")
	b.ReportMetric(both.Throughput/base.Throughput, "speedup")
}

// BenchmarkE11Aging — §2.3 device preparation. Paper shape: an aged device
// is markedly slower than a fresh one under the same burst.
func BenchmarkE11Aging(b *testing.B) {
	res := runSweep(b, experiment.E11Aging(experiment.Small))
	fresh := row(b, res, "fresh").Report
	aged := row(b, res, "aged").Report
	b.ReportMetric(fresh.Throughput, "IOPS_fresh")
	b.ReportMetric(aged.Throughput, "IOPS_aged")
	b.ReportMetric(fresh.Throughput/aged.Throughput, "slowdown")
	if aged.Throughput >= fresh.Throughput {
		b.Fatal("aging had no effect")
	}
}

// BenchmarkE12Game — §3's game: search the scheduling design space for the
// composite-score optimum. Paper shape: the best combination is not the
// obvious one.
func BenchmarkE12Game(b *testing.B) {
	res := runSweep(b, experiment.E12Game(experiment.Small))
	w := experiment.DefaultGameWeights()
	best, worst := res.Rows[0], res.Rows[0]
	for _, r := range res.Rows[1:] {
		if w.Score(r.Report) > w.Score(best.Report) {
			best = r
		}
		if w.Score(r.Report) < w.Score(worst.Report) {
			worst = r
		}
	}
	b.Logf("best combo: %s (score %.2f); worst: %s (score %.2f)",
		best.Label, w.Score(best.Report), worst.Label, w.Score(worst.Report))
	b.ReportMetric(w.Score(best.Report), "score_best")
	b.ReportMetric(w.Score(worst.Report), "score_worst")
}
