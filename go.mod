module eagletree

go 1.22
