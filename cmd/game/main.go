// Command game is the demonstration's closing game (Figure 3): guess the
// combination of SSD scheduling policies — read/write preference and
// internal-IO ordering — that maximizes throughput while balancing mean
// latency and latency variability between IO types.
//
// Guess with flags, then the simulator runs the whole design space and tells
// you how far from the optimum you landed:
//
//	game -prefer reads -internal last
//	game -reveal            # print every combination's score
//
//eagletree:canonical
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"eagletree/internal/experiment"
)

func main() {
	var (
		prefer   = flag.String("prefer", "none", "your guess: none | reads | writes")
		internal = flag.String("internal", "equal", "your guess: equal | last | first")
		scale    = flag.String("scale", "small", "workload scale: small | full")
		reveal   = flag.Bool("reveal", false, "print the whole scored design space")
	)
	flag.Parse()

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	guess := fmt.Sprintf("prefer=%s,internal=%s", *prefer, *internal)

	fmt.Println("Running the scheduling design space (this simulates the full workload once per combination)...")
	res, err := experiment.Run(experiment.E12Game(sc))
	if err != nil {
		fmt.Fprintln(os.Stderr, "game:", err)
		os.Exit(1)
	}

	w := experiment.DefaultGameWeights()
	type scored struct {
		label string
		score float64
	}
	var ranked []scored
	for _, r := range res.Rows {
		ranked = append(ranked, scored{r.Label, w.Score(r.Report)})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })

	guessRank := -1
	for i, s := range ranked {
		if s.label == guess {
			guessRank = i
		}
	}
	if guessRank < 0 {
		fmt.Fprintf(os.Stderr, "game: %q is not in the design space\n", guess)
		os.Exit(1)
	}

	if *reveal {
		fmt.Println("\nrank  score      combination")
		for i, s := range ranked {
			marker := ""
			if s.label == guess {
				marker = "   <- your guess"
			}
			fmt.Printf("%4d  %9.1f  %s%s\n", i+1, s.score, s.label, marker)
		}
	}

	fmt.Printf("\nyour guess:  %s (score %.1f)\n", guess, ranked[guessRank].score)
	fmt.Printf("optimum:     %s (score %.1f)\n", ranked[0].label, ranked[0].score)
	switch {
	case guessRank == 0:
		fmt.Println("\nPerfect — you win the EagleTree T-shirt.")
	case guessRank <= 2:
		fmt.Printf("\nClose: rank %d of %d. The design space is less intuitive than it looks.\n", guessRank+1, len(ranked))
	default:
		fmt.Printf("\nRank %d of %d. Interesting solutions are sometimes counter-intuitive — try -reveal.\n", guessRank+1, len(ranked))
	}
}
