// Command eagletreevet is the EagleTree static-analysis multichecker. It
// runs the project's determinism, hot-path, snapshot-completeness and
// typed-error analyzers (internal/lint) in either of two modes:
//
//	eagletreevet ./...                  # standalone, over package patterns
//	go vet -vettool=$(which eagletreevet) ./...   # as a vet tool
//
// Standalone mode resolves patterns with `go list -export`, so it needs the
// Go toolchain on PATH but no network. Diagnostics use the pinned format
//
//	file:line:col: message [analyzer]
//
// and the exit status is 0 when clean, 1 on findings or usage errors (2 on
// findings in vettool mode, per the cmd/go contract).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eagletree/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The cmd/go vettool handshake: `-V=full` must print
	// `<basename> version devel ... buildID=<hex>` — cmd/go folds the
	// executable's content hash into its action cache keys — and exit 0
	// before any flag parsing.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		if args[0] != "-V=full" {
			fmt.Fprintln(os.Stderr, "eagletreevet: unsupported version flag", args[0])
			return 1
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletreevet:", err)
			return 1
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletreevet:", err)
			return 1
		}
		sum := sha256.Sum256(data)
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		fmt.Printf("%s version devel eagletree-lint-suite buildID=%02x\n", name, sum)
		return 0
	}

	// The second handshake probe: `-flags` must dump the tool's flag
	// definitions as JSON so cmd/go knows which flags it may forward.
	if len(args) == 1 && args[0] == "-flags" {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		defs := []jsonFlag{
			{Name: "only", Bool: false, Usage: "comma-separated analyzer names to run (default: all)"},
			{Name: "list", Bool: true, Usage: "list the analyzers and exit"},
		}
		data, err := json.Marshal(defs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletreevet:", err)
			return 1
		}
		os.Stdout.Write(append(data, '\n'))
		return 0
	}

	fs := flag.NewFlagSet("eagletreevet", flag.ContinueOnError)
	var (
		only = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: eagletreevet [-only names] [-list] packages...\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=eagletreevet packages...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eagletreevet:", err)
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	// Vettool mode: a single argument naming a JSON config file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunUnitchecker(rest[0], analyzers, os.Stderr)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 1
	}

	diags, err := lint.Check("", rest, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eagletreevet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	suite := lint.Suite()
	if only == "" {
		return suite, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
