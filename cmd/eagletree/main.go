// Command eagletree runs one simulated configuration under one workload and
// prints the full report — the command-line counterpart of the paper's
// demonstration main window: choose hardware, controller and OS policies and
// a workload, run, observe metrics.
//
// Examples:
//
//	eagletree -channels 4 -luns 2 -workload randwrite -count 20000
//	eagletree -mapping dftl -cmt 1024 -workload mix -read-frac 0.7
//	eagletree -policy reads-first -workload mix -prepare
//	eagletree -workload zipf -open -oracle-temp -series
//	eagletree -workload fs -prepare -record fs.etb
//	eagletree -replay fs.etb -replay-mode open -policy deadline
//	eagletree -save-state aged.state
//	eagletree -load-state aged.state -workload mix -policy reads-first
//	eagletree -load-state aged.state -workload fs -record aged-fs.etb
package main

import (
	"flag"
	"fmt"
	"os"

	"eagletree"
)

func main() {
	var (
		channels = flag.Int("channels", 2, "number of channels")
		luns     = flag.Int("luns", 2, "LUNs per channel")
		blocks   = flag.Int("blocks", 128, "blocks per LUN")
		pages    = flag.Int("pages", 32, "pages per block")
		cell     = flag.String("cell", "slc", "flash cell type: slc | mlc")
		copyback = flag.Bool("copyback", false, "enable copyback GC")
		ilv      = flag.Bool("interleaving", false, "enable channel interleaving")

		mapping = flag.String("mapping", "pagemap", "FTL mapping: pagemap | dftl")
		cmt     = flag.Int("cmt", 1024, "DFTL cached mapping table entries")
		op      = flag.Float64("op", 0.15, "overprovisioning fraction")
		greed   = flag.Int("greediness", 2, "GC greediness (free blocks per LUN)")
		gcPol   = flag.String("gc", "greedy", "GC victim policy: greedy | costbenefit | random")
		wlMode  = flag.String("wl", "off", "wear leveling: off | static | dynamic | full")

		policy = flag.String("policy", "fifo", "SSD scheduler: fifo | reads-first | writes-first | deadline | fair")
		alloc  = flag.String("alloc", "leastloaded", "write allocator: leastloaded | roundrobin | striped")
		osPol  = flag.String("os-policy", "fifo", "OS scheduler: fifo | prio | cfq")
		qd     = flag.Int("qd", 32, "OS queue depth")

		open       = flag.String("open", "", "open interface: empty = block device, 'on' = honor tags")
		detector   = flag.Bool("bloom", false, "enable the multi-bloom hot-data detector")
		oracleTemp = flag.Bool("oracle-temp", false, "zipf workload publishes oracle temperature tags (needs -open on)")

		wl       = flag.String("workload", "randwrite", "workload: seqwrite | seqread | randwrite | randread | zipf | mix | fs | gracejoin | lsm | extsort")
		count    = flag.Int64("count", 10000, "workload IO count (or ops for fs, inserts for lsm)")
		depth    = flag.Int("depth", 32, "workload IO depth")
		readFrac = flag.Float64("read-frac", 0.5, "read fraction for -workload mix")
		prepare  = flag.Bool("prepare", false, "prepare the device first (sequential fill + random overwrite), measure only the workload")
		seed     = flag.Uint64("seed", 1, "deterministic simulation seed")
		series   = flag.Bool("series", false, "print the completion time series sparkline")
		memrep   = flag.Bool("mem", false, "print the controller memory report")
		trace    = flag.Int("trace", 0, "record an IO trace and print its last N events")

		saveState = flag.String("save-state", "", "prepare the device (sequential fill + random overwrite), save its state to this file and exit; restore later with -load-state")
		loadState = flag.String("load-state", "", "restore a prepared device state saved by -save-state and run the workload on it (replaces -prepare)")

		record      = flag.String("record", "", "capture the app-level IO stream to this trace file (.etb = binary); with -prepare, capture starts after preparation")
		replay      = flag.String("replay", "", "replay a block trace file instead of -workload")
		replayMode  = flag.String("replay-mode", "closed", "trace replay pacing: closed | open | dependent")
		replayScale = flag.Float64("replay-scale", 1, "trace time scale for open/dependent replay (2 = half rate, 0.5 = double rate)")
	)
	flag.Parse()

	cfg := eagletree.Config{Seed: *seed}
	cfg.Controller.Geometry = eagletree.Geometry{
		Channels: *channels, LUNsPerChannel: *luns,
		BlocksPerLUN: *blocks, PagesPerBlock: *pages, PageSize: 4096,
	}
	if *cell == "mlc" {
		cfg.Controller.Timing = eagletree.TimingMLC()
	} else {
		cfg.Controller.Timing = eagletree.TimingSLC()
	}
	cfg.Controller.Features = eagletree.Features{Copyback: *copyback, Interleaving: *ilv}
	cfg.Controller.GCCopyback = *copyback
	cfg.Controller.Overprovision = *op
	cfg.Controller.GCGreediness = *greed
	cfg.OS.QueueDepth = *qd

	if *mapping == "dftl" {
		cfg.Controller.Mapping = eagletree.MapDFTL
		cfg.Controller.CMTEntries = *cmt
		cfg.Controller.ReservedTransBlocks = 4
	}
	switch *gcPol {
	case "costbenefit":
		cfg.Controller.GCPolicy = eagletree.GCCostBenefit{}
	case "random":
		cfg.Controller.GCPolicy = &eagletree.GCRandom{}
	}
	switch *wlMode {
	case "off":
		cfg.Controller.WL = eagletree.WLOff()
	case "static":
		cfg.Controller.WL = eagletree.WLDefault()
		cfg.Controller.WL.Dynamic = false
	case "dynamic":
		cfg.Controller.WL = eagletree.WLDefault()
		cfg.Controller.WL.Static = false
	default:
		cfg.Controller.WL = eagletree.WLDefault()
	}
	switch *policy {
	case "reads-first":
		cfg.Controller.Policy = &eagletree.SSDPriority{Prefer: eagletree.PreferReads, UseTags: *open == "on"}
	case "writes-first":
		cfg.Controller.Policy = &eagletree.SSDPriority{Prefer: eagletree.PreferWrites, UseTags: *open == "on"}
	case "deadline":
		cfg.Controller.Policy = &eagletree.SSDDeadline{
			ReadDeadline:  2 * eagletree.Millisecond,
			WriteDeadline: 20 * eagletree.Millisecond,
		}
	case "fair":
		cfg.Controller.Policy = &eagletree.SSDFair{}
	default:
		if *open == "on" {
			cfg.Controller.Policy = &eagletree.SSDPriority{UseTags: true}
		}
	}
	switch *alloc {
	case "roundrobin":
		cfg.Controller.Alloc = &eagletree.AllocRoundRobin{}
	case "striped":
		cfg.Controller.Alloc = eagletree.AllocStriped{}
	}
	switch *osPol {
	case "prio":
		cfg.OS.Policy = &eagletree.OSPrio{ReadsFirst: true}
	case "cfq":
		cfg.OS.Policy = &eagletree.OSCFQ{}
	}
	cfg.Controller.OpenInterface = *open == "on"
	if *detector {
		cfg.Controller.Detector = eagletree.NewBloomDetector()
	}
	if *series {
		cfg.SeriesBucket = 10 * eagletree.Millisecond
	}
	if *trace > 0 {
		cfg.TraceCap = *trace
	}
	if *saveState != "" && *loadState != "" {
		fmt.Fprintln(os.Stderr, "eagletree: -save-state and -load-state are mutually exclusive")
		os.Exit(1)
	}
	if *loadState != "" && *prepare {
		fmt.Fprintln(os.Stderr, "eagletree: -load-state already provides a prepared device; drop -prepare")
		os.Exit(1)
	}
	if *saveState != "" && *record != "" {
		fmt.Fprintln(os.Stderr, "eagletree: -save-state runs preparation only and records nothing; capture against the restored device with -load-state -record instead")
		os.Exit(1)
	}

	var capture *eagletree.TraceCapture
	if *record != "" {
		capture = eagletree.NewTraceCapture()
		if *prepare || *loadState != "" {
			capture.Stop() // re-armed once the measured window starts
		}
		cfg.OS.Capture = capture
	}

	// -save-state: run preparation only, persist the drained stack, exit.
	// Whole sweeps can then start from the identical aged device instantly.
	if *saveState != "" {
		s, err := eagletree.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		n := int64(s.LogicalPages())
		seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
		s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
		end := s.Run()
		ds, err := s.Snapshot()
		if err == nil {
			err = eagletree.WriteStateFile(*saveState, ds)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		fmt.Printf("eagletree: prepared device (%d logical pages, %v of device time) saved to %s\n",
			n, end, *saveState)
		return
	}

	var s *eagletree.Stack
	if *loadState != "" {
		ds, err := eagletree.ReadStateFile(*loadState)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		s, err = eagletree.RestoreStack(cfg, ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		s.MarkMeasurement()
		if capture != nil {
			capture.Start(s.Engine.Now())
		}
	} else {
		var err error
		s, err = eagletree.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
	}
	n := int64(s.LogicalPages())

	var barrier *eagletree.Handle
	if *prepare {
		seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
		age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
		barrier = s.AddBarrier(age)
		if capture != nil {
			barrier = s.Add(&eagletree.FuncThread{F: func(ctx *eagletree.Ctx) {
				capture.Start(ctx.Now())
			}}, barrier)
		}
	}

	var thread eagletree.Thread
	if *replay != "" {
		tr, err := eagletree.ReadTraceFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		mode, err := eagletree.ParseReplayMode(*replayMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		*wl = fmt.Sprintf("replay(%s,%v)", *replay, mode)
		thread = &eagletree.Replay{Trace: tr, Mode: mode, TimeScale: *replayScale, Depth: *depth}
	}
	if thread == nil {
		switch *wl {
		case "seqwrite":
			thread = &eagletree.SequentialWriter{From: 0, Count: min64(*count, n), Depth: *depth}
		case "seqread":
			thread = &eagletree.SequentialReader{From: 0, Count: min64(*count, n), Depth: *depth}
		case "randread":
			thread = &eagletree.RandomReader{From: 0, Space: n, Count: *count, Depth: *depth}
		case "zipf":
			thread = &eagletree.ZipfWriter{From: 0, Space: n, Count: *count, Depth: *depth,
				TagTemperature: *oracleTemp, HotFraction: 0.2}
		case "mix":
			thread = &eagletree.ReadWriteMix{From: 0, Space: n, Count: *count, ReadFraction: *readFrac, Depth: *depth}
		case "fs":
			thread = &eagletree.FileSystem{From: 0, Space: n, Ops: *count, Depth: *depth, TagLocality: *open == "on"}
		case "gracejoin":
			r := n / 8
			thread = &eagletree.GraceJoin{RFrom: 0, RPages: r, SFrom: eagletree.LPN(r), SPages: 2 * r,
				PartFrom: eagletree.LPN(3 * r), Partitions: 8, Depth: *depth}
		case "lsm":
			thread = &eagletree.LSMInsert{From: 0, Space: n, Inserts: *count, Depth: *depth, TagPriority: *open == "on"}
		case "extsort":
			in := n / 3
			thread = &eagletree.ExternalSort{From: 0, InputPages: in, ScratchFrom: eagletree.LPN(in), Depth: *depth}
		default: // randwrite
			thread = &eagletree.RandomWriter{From: 0, Space: n, Count: *count, Depth: *depth}
		}
	}
	s.Add(thread, barrier)

	end := s.Run()
	fmt.Printf("eagletree: %s workload on %dx%d LUNs, %s, mapping=%s, policy=%s, qd=%d\n",
		*wl, *channels, *luns, *cell, *mapping, *policy, *qd)
	fmt.Printf("simulated %v of device time\n\n", end)
	fmt.Print(s.Report())
	if *series {
		if ts := s.Stats.Series(); ts != nil {
			fmt.Printf("\ncompletions over time (%d buckets):\n%s\n", ts.Len(), ts.Sparkline())
		}
	}
	if *memrep {
		fmt.Printf("\ncontroller memory:\n%s", s.Controller.Memory().Report())
	}
	if *trace > 0 {
		tr := s.Stats.Trace()
		fmt.Printf("\nIO trace (last %d of %d events):\n%s", len(tr.Events()), tr.Total(), tr.Dump())
	}
	if capture != nil {
		tr := capture.Trace()
		if err := eagletree.WriteTraceFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d IOs spanning %v to %s\n", tr.Len(), tr.Duration(), *record)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
