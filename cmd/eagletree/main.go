// Command eagletree is the one EagleTree CLI: a subcommand binary whose
// component flags, enumerated choices and help text are generated from the
// component registry, so newly registered policies, allocators, detectors
// and workload thread types surface automatically.
//
//	eagletree run      simulate one configuration under one workload
//	eagletree record   run and capture the app-level IO stream to a trace
//	eagletree replay   replay a captured trace instead of a workload
//	eagletree state    prepare & save a device state, or inspect one
//	eagletree sweep    run the E1–E13 design-space experiments or a spec
//	eagletree list     print the experiment index
//	eagletree spec     run any experiment spec document
//	eagletree doc      render the component registry as SPEC.md
//
// Run 'eagletree help' for examples and 'eagletree <command> -h' for flags.
//
// The pre-subcommand flag invocation ('eagletree -workload mix …') is
// deprecated; it forwards to 'eagletree run' with a note on stderr.
//
//eagletree:canonical
package main

import (
	"fmt"
	"os"
	"strings"

	"eagletree/internal/cli"
)

func main() {
	args := os.Args[1:]
	// Deprecated flag-mode compatibility: a leading flag means the old
	// single-binary invocation; forward it to the run subcommand.
	if len(args) > 0 && strings.HasPrefix(args[0], "-") && args[0] != "-h" && args[0] != "-help" && args[0] != "--help" {
		fmt.Fprintln(os.Stderr, "eagletree: flag-only invocation is deprecated; use 'eagletree run ...' (forwarding)")
		args = append([]string{"run"}, args...)
	}
	os.Exit(cli.Main(args, os.Stdout, os.Stderr))
}
