// Command eagletree runs one simulated configuration under one workload and
// prints the full report — the command-line counterpart of the paper's
// demonstration main window: choose hardware, controller and OS policies and
// a workload, run, observe metrics.
//
// Examples:
//
//	eagletree -channels 4 -luns 2 -workload randwrite -count 20000
//	eagletree -mapping dftl -cmt 1024 -workload mix -read-frac 0.7
//	eagletree -policy reads-first -workload mix -prepare
//	eagletree -workload zipf -open -oracle-temp -series
//	eagletree -workload fs -prepare -record fs.etb
//	eagletree -replay fs.etb -replay-mode open -policy deadline
//	eagletree -save-state aged.state
//	eagletree -load-state aged.state -workload mix -policy reads-first
//	eagletree -load-state aged.state -workload fs -record aged-fs.etb
//	eagletree -policy deadline -workload mix -prepare -dump-spec run.json
//	eagletree -spec run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"eagletree"
)

func main() {
	var (
		channels = flag.Int("channels", 2, "number of channels")
		luns     = flag.Int("luns", 2, "LUNs per channel")
		blocks   = flag.Int("blocks", 128, "blocks per LUN")
		pages    = flag.Int("pages", 32, "pages per block")
		cell     = flag.String("cell", "slc", "flash cell type: slc | mlc")
		copyback = flag.Bool("copyback", false, "enable copyback GC")
		ilv      = flag.Bool("interleaving", false, "enable channel interleaving")

		mapping = flag.String("mapping", "pagemap", "FTL mapping: pagemap | dftl")
		cmt     = flag.Int("cmt", 1024, "DFTL cached mapping table entries")
		op      = flag.Float64("op", 0.15, "overprovisioning fraction")
		greed   = flag.Int("greediness", 2, "GC greediness (free blocks per LUN)")
		gcPol   = flag.String("gc", "greedy", "GC victim policy: greedy | costbenefit | random")
		wlMode  = flag.String("wl", "off", "wear leveling: off | static | dynamic | full")

		policy = flag.String("policy", "fifo", "SSD scheduler: fifo | reads-first | writes-first | deadline | fair")
		alloc  = flag.String("alloc", "leastloaded", "write allocator: leastloaded | roundrobin | striped")
		osPol  = flag.String("os-policy", "fifo", "OS scheduler: fifo | prio | cfq")
		qd     = flag.Int("qd", 32, "OS queue depth")

		open       = flag.String("open", "", "open interface: empty = block device, 'on' = honor tags")
		detector   = flag.Bool("bloom", false, "enable the multi-bloom hot-data detector")
		oracleTemp = flag.Bool("oracle-temp", false, "zipf workload publishes oracle temperature tags (needs -open on)")

		wl       = flag.String("workload", "randwrite", "workload: seqwrite | seqread | randwrite | randread | zipf | mix | fs | gracejoin | lsm | extsort")
		count    = flag.Int64("count", 10000, "workload IO count (or ops for fs, inserts for lsm)")
		depth    = flag.Int("depth", 32, "workload IO depth")
		readFrac = flag.Float64("read-frac", 0.5, "read fraction for -workload mix")
		prepare  = flag.Bool("prepare", false, "prepare the device first (sequential fill + random overwrite), measure only the workload")
		seed     = flag.Uint64("seed", 1, "deterministic simulation seed")
		series   = flag.Bool("series", false, "print the completion time series sparkline")
		memrep   = flag.Bool("mem", false, "print the controller memory report")
		trace    = flag.Int("trace", 0, "record an IO trace and print its last N events")

		saveState = flag.String("save-state", "", "prepare the device (sequential fill + random overwrite), save its state to this file and exit; restore later with -load-state")
		loadState = flag.String("load-state", "", "restore a prepared device state saved by -save-state and run the workload on it (replaces -prepare)")

		record      = flag.String("record", "", "capture the app-level IO stream to this trace file (.etb = binary); with -prepare, capture starts after preparation")
		replay      = flag.String("replay", "", "replay a block trace file instead of -workload")
		replayMode  = flag.String("replay-mode", "closed", "trace replay pacing: closed | open | dependent")
		replayScale = flag.Float64("replay-scale", 1, "trace time scale for open/dependent replay (2 = half rate, 0.5 = double rate)")

		specFile = flag.String("spec", "", "run a declarative experiment spec file instead of flags (single-variant specs print the run report, grids print the experiment table)")
		dumpSpec = flag.String("dump-spec", "", "write the flag-selected configuration, preparation and workload as a spec file and exit; re-run it later with -spec")
	)
	flag.Parse()

	if *specFile != "" {
		if flag.NFlag() > 1 {
			fmt.Fprintln(os.Stderr, "eagletree: -spec is self-contained; drop the other flags (use -dump-spec to convert flags into a spec)")
			os.Exit(1)
		}
		runSpec(*specFile)
		return
	}

	cfg := eagletree.Config{Seed: *seed}
	cfg.Controller.Geometry = eagletree.Geometry{
		Channels: *channels, LUNsPerChannel: *luns,
		BlocksPerLUN: *blocks, PagesPerBlock: *pages, PageSize: 4096,
	}
	if *cell == "mlc" {
		cfg.Controller.Timing = eagletree.TimingMLC()
	} else {
		cfg.Controller.Timing = eagletree.TimingSLC()
	}
	cfg.Controller.Features = eagletree.Features{Copyback: *copyback, Interleaving: *ilv}
	cfg.Controller.GCCopyback = *copyback
	cfg.Controller.Overprovision = *op
	cfg.Controller.GCGreediness = *greed
	cfg.OS.QueueDepth = *qd

	if *mapping == "dftl" {
		cfg.Controller.Mapping = eagletree.MapDFTL
		cfg.Controller.CMTEntries = *cmt
		cfg.Controller.ReservedTransBlocks = 4
	}
	switch *gcPol {
	case "costbenefit":
		cfg.Controller.GCPolicy = eagletree.GCCostBenefit{}
	case "random":
		cfg.Controller.GCPolicy = &eagletree.GCRandom{}
	}
	switch *wlMode {
	case "off":
		cfg.Controller.WL = eagletree.WLOff()
	case "static":
		cfg.Controller.WL = eagletree.WLDefault()
		cfg.Controller.WL.Dynamic = false
	case "dynamic":
		cfg.Controller.WL = eagletree.WLDefault()
		cfg.Controller.WL.Static = false
	default:
		cfg.Controller.WL = eagletree.WLDefault()
	}
	switch *policy {
	case "reads-first":
		cfg.Controller.Policy = &eagletree.SSDPriority{Prefer: eagletree.PreferReads, UseTags: *open == "on"}
	case "writes-first":
		cfg.Controller.Policy = &eagletree.SSDPriority{Prefer: eagletree.PreferWrites, UseTags: *open == "on"}
	case "deadline":
		cfg.Controller.Policy = &eagletree.SSDDeadline{
			ReadDeadline:  2 * eagletree.Millisecond,
			WriteDeadline: 20 * eagletree.Millisecond,
		}
	case "fair":
		cfg.Controller.Policy = &eagletree.SSDFair{}
	default:
		if *open == "on" {
			cfg.Controller.Policy = &eagletree.SSDPriority{UseTags: true}
		}
	}
	switch *alloc {
	case "roundrobin":
		cfg.Controller.Alloc = &eagletree.AllocRoundRobin{}
	case "striped":
		cfg.Controller.Alloc = eagletree.AllocStriped{}
	}
	switch *osPol {
	case "prio":
		cfg.OS.Policy = &eagletree.OSPrio{ReadsFirst: true}
	case "cfq":
		cfg.OS.Policy = &eagletree.OSCFQ{}
	}
	cfg.Controller.OpenInterface = *open == "on"
	if *detector {
		cfg.Controller.Detector = eagletree.NewBloomDetector()
	}
	if *series {
		cfg.SeriesBucket = 10 * eagletree.Millisecond
	}
	if *trace > 0 {
		cfg.TraceCap = *trace
	}
	if *saveState != "" && *loadState != "" {
		fmt.Fprintln(os.Stderr, "eagletree: -save-state and -load-state are mutually exclusive")
		os.Exit(1)
	}
	if *loadState != "" && *prepare {
		fmt.Fprintln(os.Stderr, "eagletree: -load-state already provides a prepared device; drop -prepare")
		os.Exit(1)
	}
	if *saveState != "" && *record != "" {
		fmt.Fprintln(os.Stderr, "eagletree: -save-state runs preparation only and records nothing; capture against the restored device with -load-state -record instead")
		os.Exit(1)
	}

	// -dump-spec: round-trip the flag combination into a declarative spec
	// file and exit. Running the file with -spec reproduces this exact run.
	if *dumpSpec != "" {
		if *saveState != "" || *loadState != "" || *record != "" {
			fmt.Fprintln(os.Stderr, "eagletree: -save-state/-load-state/-record are runtime file operations a spec cannot express; drop them for -dump-spec")
			os.Exit(1)
		}
		doc, err := specFromFlags(cfg, flagWorkload{
			kind: *wl, count: *count, depth: *depth, readFrac: *readFrac,
			open: *open == "on", oracleTemp: *oracleTemp, prepare: *prepare,
			replay: *replay, replayMode: *replayMode, replayScale: *replayScale,
		})
		if err == nil {
			err = eagletree.WriteExperimentSpec(*dumpSpec, doc)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		fmt.Printf("eagletree: wrote spec %q %s; run it with: eagletree -spec %s\n", doc.Name, *dumpSpec, *dumpSpec)
		return
	}

	var capture *eagletree.TraceCapture
	if *record != "" {
		capture = eagletree.NewTraceCapture()
		if *prepare || *loadState != "" {
			capture.Stop() // re-armed once the measured window starts
		}
		cfg.OS.Capture = capture
	}

	// -save-state: run preparation only, persist the drained stack, exit.
	// Whole sweeps can then start from the identical aged device instantly.
	if *saveState != "" {
		s, err := eagletree.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		n := int64(s.LogicalPages())
		seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
		s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
		end := s.Run()
		ds, err := s.Snapshot()
		if err == nil {
			err = eagletree.WriteStateFile(*saveState, ds)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		fmt.Printf("eagletree: prepared device (%d logical pages, %v of device time) saved to %s\n",
			n, end, *saveState)
		return
	}

	var s *eagletree.Stack
	if *loadState != "" {
		ds, err := eagletree.ReadStateFile(*loadState)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		s, err = eagletree.RestoreStack(cfg, ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		s.MarkMeasurement()
		if capture != nil {
			capture.Start(s.Engine.Now())
		}
	} else {
		var err error
		s, err = eagletree.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
	}
	n := int64(s.LogicalPages())

	var barrier *eagletree.Handle
	if *prepare {
		seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
		age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
		barrier = s.AddBarrier(age)
		if capture != nil {
			barrier = s.Add(&eagletree.FuncThread{F: func(ctx *eagletree.Ctx) {
				capture.Start(ctx.Now())
			}}, barrier)
		}
	}

	var thread eagletree.Thread
	if *replay != "" {
		tr, err := eagletree.ReadTraceFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		mode, err := eagletree.ParseReplayMode(*replayMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		*wl = fmt.Sprintf("replay(%s,%v)", *replay, mode)
		thread = &eagletree.Replay{Trace: tr, Mode: mode, TimeScale: *replayScale, Depth: *depth}
	}
	if thread == nil {
		switch *wl {
		case "seqwrite":
			thread = &eagletree.SequentialWriter{From: 0, Count: min64(*count, n), Depth: *depth}
		case "seqread":
			thread = &eagletree.SequentialReader{From: 0, Count: min64(*count, n), Depth: *depth}
		case "randread":
			thread = &eagletree.RandomReader{From: 0, Space: n, Count: *count, Depth: *depth}
		case "zipf":
			thread = &eagletree.ZipfWriter{From: 0, Space: n, Count: *count, Depth: *depth,
				TagTemperature: *oracleTemp, HotFraction: 0.2}
		case "mix":
			thread = &eagletree.ReadWriteMix{From: 0, Space: n, Count: *count, ReadFraction: *readFrac, Depth: *depth}
		case "fs":
			thread = &eagletree.FileSystem{From: 0, Space: n, Ops: *count, Depth: *depth, TagLocality: *open == "on"}
		case "gracejoin":
			r := n / 8
			thread = &eagletree.GraceJoin{RFrom: 0, RPages: r, SFrom: eagletree.LPN(r), SPages: 2 * r,
				PartFrom: eagletree.LPN(3 * r), Partitions: 8, Depth: *depth}
		case "lsm":
			thread = &eagletree.LSMInsert{From: 0, Space: n, Inserts: *count, Depth: *depth, TagPriority: *open == "on"}
		case "extsort":
			in := n / 3
			thread = &eagletree.ExternalSort{From: 0, InputPages: in, ScratchFrom: eagletree.LPN(in), Depth: *depth}
		default: // randwrite
			thread = &eagletree.RandomWriter{From: 0, Space: n, Count: *count, Depth: *depth}
		}
	}
	s.Add(thread, barrier)

	end := s.Run()
	fmt.Printf("eagletree: %s workload on %dx%d LUNs, %s, mapping=%s, policy=%s, qd=%d\n",
		*wl, *channels, *luns, *cell, *mapping, *policy, *qd)
	fmt.Printf("simulated %v of device time\n\n", end)
	fmt.Print(s.Report())
	if *series {
		if ts := s.Stats.Series(); ts != nil {
			fmt.Printf("\ncompletions over time (%d buckets):\n%s\n", ts.Len(), ts.Sparkline())
		}
	}
	if *memrep {
		fmt.Printf("\ncontroller memory:\n%s", s.Controller.Memory().Report())
	}
	if *trace > 0 {
		tr := s.Stats.Trace()
		fmt.Printf("\nIO trace (last %d of %d events):\n%s", len(tr.Events()), tr.Total(), tr.Dump())
	}
	if capture != nil {
		tr := capture.Trace()
		if err := eagletree.WriteTraceFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, "eagletree:", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d IOs spanning %v to %s\n", tr.Len(), tr.Duration(), *record)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eagletree:", err)
		os.Exit(1)
	}
}

// runSpec executes a declarative experiment spec file. Variant grids run
// through the experiment suite and print its table; a single-run spec is
// driven through the exact flag-mode flow (same stack, same thread
// registration order), so a file written by -dump-spec reproduces the
// flag-driven run bit for bit.
func runSpec(path string) {
	doc, err := eagletree.ReadExperimentSpec(path)
	die(err)
	die(doc.Validate())
	if len(doc.Variants) > 1 {
		def, err := eagletree.ExperimentFromSpec(doc)
		die(err)
		res, err := eagletree.RunExperiment(def)
		die(err)
		fmt.Printf("eagletree: spec %s: experiment %s (%d variants)\n\n", path, doc.Name, len(doc.Variants))
		fmt.Print(res.Table())
		return
	}

	variant := eagletree.SpecVariant{Label: "run"}
	if len(doc.Variants) == 1 {
		variant = doc.Variants[0]
	}
	cs := doc.Base
	die(cs.Apply(variant.Set))
	cfg, err := cs.Resolve()
	die(err)
	s, err := eagletree.New(cfg)
	die(err)
	die(eagletree.RegisterSpecRun(doc, variant, s))

	end := s.Run()
	fmt.Printf("eagletree: spec %s: %s / %s\n", path, doc.Name, variant.Label)
	fmt.Printf("simulated %v of device time\n\n", end)
	fmt.Print(s.Report())
}

// flagWorkload carries the workload-shaping flags into the spec dumper.
type flagWorkload struct {
	kind        string
	count       int64
	depth       int
	readFrac    float64
	open        bool
	oracleTemp  bool
	prepare     bool
	replay      string
	replayMode  string
	replayScale float64
}

// specFromFlags renders the flag-selected run as a declarative document.
// Sizes that the flag mode derives from the device capacity are written as
// expressions over n, so the dumped file stays meaningful if its geometry
// is edited later.
func specFromFlags(cfg eagletree.Config, w flagWorkload) (eagletree.ExperimentSpec, error) {
	base, err := eagletree.ConfigSpecOf(cfg)
	if err != nil {
		return eagletree.ExperimentSpec{}, err
	}
	// The flag mode caps sequential passes at the device's logical capacity;
	// resolve n once to preserve that exact arithmetic in the document.
	probe, err := eagletree.New(cfg)
	if err != nil {
		return eagletree.ExperimentSpec{}, err
	}
	n := int64(probe.LogicalPages())

	name := "cli-" + w.kind
	var thread eagletree.SpecThread
	switch {
	case w.replay != "":
		name = "cli-replay"
		thread = eagletree.SpecThread{Type: "replay", Params: map[string]any{
			"path": w.replay, "mode": w.replayMode, "time_scale": w.replayScale, "depth": w.depth,
		}}
	case w.kind == "seqwrite" || w.kind == "seqread":
		typ := "seqwrite"
		if w.kind == "seqread" {
			typ = "seqread"
		}
		count := any(w.count)
		if w.count >= n {
			count = "n"
		}
		thread = eagletree.SpecThread{Type: typ, Params: map[string]any{
			"from": 0, "count": count, "depth": w.depth,
		}}
	case w.kind == "randread":
		thread = eagletree.SpecThread{Type: "randread", Params: map[string]any{
			"from": 0, "space": "n", "count": w.count, "depth": w.depth,
		}}
	case w.kind == "zipf":
		thread = eagletree.SpecThread{Type: "zipf", Params: map[string]any{
			"from": 0, "space": "n", "count": w.count, "depth": w.depth,
			"tag_temperature": w.oracleTemp, "hot_fraction": 0.2,
		}}
	case w.kind == "mix":
		thread = eagletree.SpecThread{Type: "mix", Params: map[string]any{
			"from": 0, "space": "n", "count": w.count, "read_fraction": w.readFrac, "depth": w.depth,
		}}
	case w.kind == "fs":
		thread = eagletree.SpecThread{Type: "fs", Params: map[string]any{
			"from": 0, "space": "n", "ops": w.count, "depth": w.depth, "tag_locality": w.open,
		}}
	case w.kind == "gracejoin":
		thread = eagletree.SpecThread{Type: "gracejoin", Params: map[string]any{
			"r_from": 0, "r_pages": "n/8", "s_from": "n/8", "s_pages": "2*(n/8)",
			"part_from": "3*(n/8)", "partitions": 8, "depth": w.depth,
		}}
	case w.kind == "lsm":
		thread = eagletree.SpecThread{Type: "lsm", Params: map[string]any{
			"from": 0, "space": "n", "inserts": w.count, "depth": w.depth, "tag_priority": w.open,
		}}
	case w.kind == "extsort":
		thread = eagletree.SpecThread{Type: "extsort", Params: map[string]any{
			"from": 0, "input_pages": "n/3", "scratch_from": "n/3", "depth": w.depth,
		}}
	default: // randwrite
		thread = eagletree.SpecThread{Type: "randwrite", Params: map[string]any{
			"from": 0, "space": "n", "count": w.count, "depth": w.depth,
		}}
	}

	doc := eagletree.ExperimentSpec{
		Name:     name,
		Doc:      "dumped from eagletree command-line flags",
		Base:     base,
		Workload: []eagletree.SpecThread{thread},
	}
	if w.prepare {
		doc.Prep = &eagletree.SpecPrep{FillDepth: 32, AgePasses: 1}
	}
	return doc, nil
}
