// Command sweep runs the predefined design-space experiments (DESIGN.md's
// E1–E12) and prints their result tables and charts — the experimental-suite
// API exercised end to end. EXPERIMENTS.md records its output against the
// paper's expected shapes.
//
// Examples:
//
//	sweep -list
//	sweep -run e3
//	sweep -run all -scale full -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eagletree/internal/experiment"
	"eagletree/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "all", "experiment to run: e1..e12 | all")
		scale    = flag.String("scale", "small", "workload scale: small | full")
		csv      = flag.Bool("csv", false, "also print CSV")
		chart    = flag.Bool("chart", true, "print throughput chart per experiment")
		timeline = flag.Bool("timeline", false, "record and print completions-over-time sparklines")
		workers  = flag.Int("workers", 0, "parallel variant workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	suite := experiment.Suite(sc)

	if *list {
		for _, def := range suite {
			fmt.Println(def.Name)
		}
		return
	}

	sel := strings.ToLower(*run)
	ran := 0
	for _, def := range suite {
		id := strings.SplitN(def.Name, "-", 2)[0] // "E3"
		if sel != "all" && !strings.EqualFold(id, sel) && !strings.EqualFold(def.Name, sel) {
			continue
		}
		ran++
		if *timeline {
			def.SeriesBucket = 20 * sim.Millisecond
		}
		res, err := experiment.RunWorkers(def, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		if *chart {
			fmt.Println(res.Chart(experiment.MetricThroughput, 40))
		}
		if *timeline {
			fmt.Println(res.Timelines())
		}
		if def.Name == "E12-game" {
			printGame(res)
		}
		if *csv {
			fmt.Println(res.CSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sweep: no experiment matches %q (try -list)\n", *run)
		os.Exit(1)
	}
}

func printGame(res experiment.Results) {
	w := experiment.DefaultGameWeights()
	best := res.Rows[0]
	for _, r := range res.Rows {
		fmt.Printf("  score %10.1f  %s\n", w.Score(r.Report), r.Label)
		if w.Score(r.Report) > w.Score(best.Report) {
			best = r
		}
	}
	fmt.Printf("optimal combination: %s\n\n", best.Label)
}
