// Command sweep runs the predefined design-space experiments (DESIGN.md's
// E1–E13) and prints their result tables and charts — the experimental-suite
// API exercised end to end. EXPERIMENTS.md records its output against the
// paper's expected shapes.
//
// Examples:
//
//	sweep -list
//	sweep -run e3
//	sweep -run e3,e11,e13
//	sweep -run all -scale full -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eagletree/internal/experiment"
	"eagletree/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "all", "experiments to run: e1..e13, comma-separated | all")
		scale    = flag.String("scale", "small", "workload scale: small | full")
		csv      = flag.Bool("csv", false, "also print CSV")
		chart    = flag.Bool("chart", true, "print throughput chart per experiment")
		timeline = flag.Bool("timeline", false, "record and print completions-over-time sparklines")
		workers  = flag.Int("workers", 0, "parallel variant workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheDir = flag.String("state-cache", "", "persist prepared device states under this directory; repeated sweeps restore instead of re-aging")
		fresh    = flag.Bool("fresh", false, "disable prepared-state reuse: every variant ages its own device (the slow reference path)")
	)
	flag.Parse()

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	suite := experiment.Suite(sc)

	if *list {
		for _, def := range suite {
			fmt.Println(def.Name)
		}
		return
	}

	sels := strings.Split(*run, ",")
	match := func(def experiment.Definition) bool {
		id := strings.SplitN(def.Name, "-", 2)[0] // "E3"
		for _, sel := range sels {
			sel = strings.TrimSpace(sel)
			if strings.EqualFold(sel, "all") || strings.EqualFold(id, sel) || strings.EqualFold(def.Name, sel) {
				return true
			}
		}
		return false
	}
	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		// One cache across the whole invocation: experiments sharing a
		// prepared state (same geometry, preparation and seed) reuse it, and
		// the directory carries it to the next invocation.
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}
	ran := 0
	for _, def := range suite {
		if !match(def) {
			continue
		}
		ran++
		if *timeline {
			def.SeriesBucket = 20 * sim.Millisecond
		}
		res, err := experiment.RunOpts(def, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		if *chart {
			fmt.Println(res.Chart(experiment.MetricThroughput, 40))
		}
		if *timeline {
			fmt.Println(res.Timelines())
		}
		if def.Name == "E12-game" {
			printGame(res)
		}
		if *csv {
			fmt.Println(res.CSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sweep: no experiment matches %q (try -list)\n", *run)
		os.Exit(1)
	}
}

func printGame(res experiment.Results) {
	if len(res.Rows) == 0 {
		fmt.Println("game: no result rows to score")
		return
	}
	w := experiment.DefaultGameWeights()
	best := res.Rows[0]
	bestScore := w.Score(best.Report)
	for _, r := range res.Rows {
		score := w.Score(r.Report)
		fmt.Printf("  score %10.1f  %s\n", score, r.Label)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	fmt.Printf("optimal combination: %s\n\n", best.Label)
}
