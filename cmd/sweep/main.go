// Command sweep runs the predefined design-space experiments (DESIGN.md's
// E1–E13) and prints their result tables and charts — the experimental-suite
// API exercised end to end. EXPERIMENTS.md records its output against the
// paper's expected shapes.
//
// The suite is pure spec data: -list prints the experiment index straight
// from the data definitions, and -spec runs any experiment document — the
// checked-in specs/*.json golden files or one you wrote yourself — through
// the identical pipeline.
//
// Examples:
//
//	sweep -list
//	sweep -run e3
//	sweep -run e3,e11,e13
//	sweep -run all -scale full -csv
//	sweep -spec specs/e3.json
//	sweep -spec myexperiment.json -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eagletree/internal/experiment"
	"eagletree/internal/sim"
	"eagletree/internal/spec"
)

func main() {
	var (
		list     = flag.Bool("list", false, "print the experiment index (ID, name, varied dimension, paper hook)")
		run      = flag.String("run", "all", "experiments to run: e1..e13, comma-separated | all")
		specFile = flag.String("spec", "", "run an experiment spec file instead of the predefined suite")
		scale    = flag.String("scale", "small", "workload scale: small | full")
		csv      = flag.Bool("csv", false, "also print CSV")
		chart    = flag.Bool("chart", true, "print throughput chart per experiment")
		timeline = flag.Bool("timeline", false, "record and print completions-over-time sparklines")
		workers  = flag.Int("workers", 0, "parallel variant workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheDir = flag.String("state-cache", "", "persist prepared device states under this directory; repeated sweeps restore instead of re-aging")
		fresh    = flag.Bool("fresh", false, "disable prepared-state reuse: every variant ages its own device (the slow reference path)")
	)
	flag.Parse()

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	suite := experiment.SuiteSpecs(sc)

	if *list {
		fmt.Printf("%-4s %-22s %-42s %s\n", "ID", "NAME", "VARIES", "SHOWS")
		for _, e := range suite {
			id := strings.SplitN(e.Name, "-", 2)[0]
			fmt.Printf("%-4s %-22s %-42s %s\n", id, e.Name, e.Varies, e.Doc)
		}
		return
	}

	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		// One cache across the whole invocation: experiments sharing a
		// prepared state (same geometry, preparation and seed) reuse it, and
		// the directory carries it to the next invocation.
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}

	var selected []spec.Experiment
	if *specFile != "" {
		// A spec document carries its own selection and scale; silently
		// ignoring -run/-scale would let "sweep -spec x.json -scale full"
		// print small-scale numbers under a full-scale belief.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "run" || f.Name == "scale" {
				fmt.Fprintf(os.Stderr, "sweep: -%s does not apply to -spec (the document is self-contained)\n", f.Name)
				os.Exit(1)
			}
		})
		doc, err := spec.ReadFile(*specFile)
		if err == nil {
			err = doc.Validate()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		selected = []spec.Experiment{doc}
	} else {
		sels := strings.Split(*run, ",")
		match := func(e spec.Experiment) bool {
			id := strings.SplitN(e.Name, "-", 2)[0] // "E3"
			for _, sel := range sels {
				sel = strings.TrimSpace(sel)
				if strings.EqualFold(sel, "all") || strings.EqualFold(id, sel) || strings.EqualFold(e.Name, sel) {
					return true
				}
			}
			return false
		}
		for _, e := range suite {
			if match(e) {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "sweep: no experiment matches %q (try -list)\n", *run)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		def, err := experiment.FromSpec(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if *timeline {
			def.SeriesBucket = 20 * sim.Millisecond
		}
		res, err := experiment.RunOpts(def, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		if *chart {
			fmt.Println(res.Chart(experiment.MetricThroughput, 40))
		}
		if *timeline {
			fmt.Println(res.Timelines())
		}
		if def.Name == "E12-game" {
			printGame(res)
		}
		if *csv {
			fmt.Println(res.CSV())
		}
	}
}

func printGame(res experiment.Results) {
	if len(res.Rows) == 0 {
		fmt.Println("game: no result rows to score")
		return
	}
	w := experiment.DefaultGameWeights()
	best := res.Rows[0]
	bestScore := w.Score(best.Report)
	for _, r := range res.Rows {
		score := w.Score(r.Report)
		fmt.Printf("  score %10.1f  %s\n", score, r.Label)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	fmt.Printf("optimal combination: %s\n\n", best.Label)
}
