// Command sweep is a deprecated shim: the experiment sweeper now lives in
// the eagletree subcommand binary. 'sweep ARGS' forwards to
// 'eagletree sweep ARGS' (and 'sweep -list', in any flag combination, to
// 'eagletree list') with a deprecation note on stderr, so existing
// invocations keep working.
//
//eagletree:canonical
package main

import (
	"fmt"
	"os"
	"strings"

	"eagletree/internal/cli"
)

func main() {
	args := os.Args[1:]
	sub := "sweep"
	// -list was a sweep flag; it is its own subcommand now. The old binary
	// accepted it alongside any other flag and ignored everything but
	// -scale, so the shim forwards exactly that subset.
	for _, a := range args {
		if a == "-list" || a == "--list" || a == "-list=true" || a == "--list=true" {
			sub = "list"
			args = listArgs(args)
			break
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: deprecated; use 'eagletree %s ...' (forwarding)\n", sub)
	os.Exit(cli.Main(append([]string{sub}, args...), os.Stdout, os.Stderr))
}

// listArgs keeps only the -scale flag (the one listing respects) from a
// legacy 'sweep -list ...' invocation.
func listArgs(args []string) []string {
	var out []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "-scale" || a == "--scale" {
			if i+1 < len(args) {
				out = append(out, "-scale", args[i+1])
				i++
			}
		} else if v, ok := strings.CutPrefix(a, "-scale="); ok {
			out = append(out, "-scale", v)
		} else if v, ok := strings.CutPrefix(a, "--scale="); ok {
			out = append(out, "-scale", v)
		}
	}
	return out
}
