// Command benchgate turns `go test -bench` text output into machine-readable
// JSON and gates guarded benchmarks against a committed baseline — the CI
// bench-regression job's engine.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... > all.txt
//	go test -run '^$' -bench 'X|Y' -benchtime 20000x -count 3 ./pkg > guard.txt
//	benchgate -out BENCH_PR3.json -baseline BENCH_BASELINE.json \
//	    -guard BenchmarkEngineSchedule,BenchmarkControllerDispatch \
//	    all.txt guard.txt
//
// Every parsed benchmark lands in the output JSON (benchmark name → ns/op,
// allocs/op, B/op). When the same benchmark appears several times (-count),
// the minimum ns/op is kept: best-of-N is the noise-robust statistic for a
// regression gate. Guarded benchmarks fail the gate when their ns/op or
// bytes/op exceeds the baseline by more than -max-regress, or when allocs/op
// grows at all — allocation counts are deterministic, so any increase is a
// real regression. A guarded benchmark missing from the results or the
// baseline fails the gate with a diagnostic naming the benchmark and the
// file it was expected in; it never panics, so a renamed benchmark shows up
// in CI as a readable failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measured numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
}

// File is the JSON document benchgate reads and writes.
type File struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "", "write parsed results to this JSON file")
		baseline   = flag.String("baseline", "", "baseline JSON to gate against")
		guard      = flag.String("guard", "", "comma-separated benchmark names that must not regress")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum allowed ns/op regression for guarded benchmarks (0.25 = +25%)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no input files (pass `go test -bench` output files)")
		os.Exit(2)
	}

	results := make(map[string]Result)
	for _, path := range flag.Args() {
		if err := parseFile(path, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: inputs contained no benchmark lines")
		os.Exit(2)
	}

	if *out != "" {
		data, err := json.MarshalIndent(File{Benchmarks: results}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *out)
	}

	if *baseline == "" || *guard == "" {
		return
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	failed := false
	for _, name := range strings.Split(*guard, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: guarded benchmark %s missing from results — "+
				"was it renamed, or did its package fail to build? (inputs: %s)\n",
				name, strings.Join(flag.Args(), ", "))
			failed = true
			continue
		}
		want, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: guarded benchmark %s missing from baseline %s — "+
				"add it to the baseline before guarding it\n", name, *baseline)
			failed = true
			continue
		}
		if want.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: baseline %s has non-positive ns/op for %s; re-measure the baseline\n",
				*baseline, name)
			failed = true
			continue
		}
		ratio := got.NsPerOp / want.NsPerOp
		status := "ok"
		if ratio > 1+*maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchgate: %-32s %10.1f ns/op vs baseline %10.1f (%+.1f%%) %s\n",
			name, got.NsPerOp, want.NsPerOp, (ratio-1)*100, status)
		if got.AllocsPerOp > want.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchgate: %s allocs/op grew %.0f -> %.0f\n",
				name, want.AllocsPerOp, got.AllocsPerOp)
			failed = true
		}
		// Bytes/op regressions get the same relative budget as ns/op: the
		// count is near-deterministic but small size-class rounding keeps
		// it from being an exact-equality signal like allocs/op.
		if got.BytesPerOp > want.BytesPerOp*(1+*maxRegress)+0.5 {
			fmt.Fprintf(os.Stderr, "benchgate: %s bytes/op grew %.0f -> %.0f (budget %+.0f%%)\n",
				name, want.BytesPerOp, got.BytesPerOp, *maxRegress*100)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func readBaseline(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// parseFile extracts benchmark result lines from `go test -bench` output.
// Lines look like:
//
//	BenchmarkEngineSchedule-8   20000   35.5 ns/op   0 B/op   0 allocs/op
//
// Repeated names (from -count or multiple files) keep the fastest run.
func parseFile(path string, into map[string]Result) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so names are machine-independent.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				seen = true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		if prev, ok := into[name]; !ok || r.NsPerOp < prev.NsPerOp {
			into[name] = r
		}
	}
	return sc.Err()
}
