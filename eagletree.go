// Package eagletree is a discrete-event simulation framework for SSD-based
// algorithms, reproducing "EagleTree: Exploring the Design Space of SSD-Based
// Algorithms" (Dayan, Svendsen, Bjørling, Bonnet, Bouganim — VLDB 2013).
//
// EagleTree simulates the complete IO stack in virtual time, bottom-up:
//
//   - the flash hardware array (channels × LUNs, SLC/MLC timings, advanced
//     commands: copyback and channel interleaving),
//   - the SSD controller (page-map or DFTL mapping, garbage collection, wear
//     leveling, a modular IO scheduler, RAM accounting, write buffering),
//   - the operating-system IO scheduler (pending pools, queue depth, FIFO /
//     priority / CFQ policies),
//   - and an application thread framework (init/callback threads, workload
//     generators, dependencies for device preparation).
//
// Beyond the block-device contract, the OS and SSD can converse over an
// extensible message bus — the open interface — carrying priorities,
// update-locality groups and data temperatures.
//
// A (Config, Seed) pair fully determines the simulation trace, so large
// design-space explorations are repeatable. The experiment suite runs one
// simulation per variant of a parameter or policy and renders comparable
// tables, CSV and text charts.
//
// Quickstart:
//
//	cfg := eagletree.DefaultConfig()
//	s, err := eagletree.New(cfg)
//	if err != nil { ... }
//	n := int64(s.LogicalPages())
//	prep := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
//	barrier := s.AddBarrier(prep)
//	s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, barrier)
//	s.Run()
//	fmt.Println(s.Report())
package eagletree

import (
	"context"
	"io"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/experiment"
	"eagletree/internal/fabric"
	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/query"
	"eagletree/internal/resultstore"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/spec"
	"eagletree/internal/trace"
	"eagletree/internal/wl"
	"eagletree/internal/workload"
)

// Virtual time. All latencies and timestamps are virtual nanoseconds.
type (
	// Time is a virtual instant (nanoseconds since simulation start).
	Time = sim.Time
	// Duration is a virtual time span.
	Duration = sim.Duration
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Hardware layer types.
type (
	// Geometry is the SSD's physical shape: channels × LUNs × blocks × pages.
	Geometry = flash.Geometry
	// Timing holds per-operation flash chip latencies.
	Timing = flash.Timing
	// Features flags advanced chip commands (copyback, interleaving).
	Features = flash.Features
	// PPA is a physical page address.
	PPA = flash.PPA
)

// TimingSLC returns timings typical of SLC datasheets.
func TimingSLC() Timing { return flash.TimingSLC() }

// TimingMLC returns timings typical of MLC datasheets.
func TimingMLC() Timing { return flash.TimingMLC() }

// Block interface and open interface types.
type (
	// LPN is a logical page number.
	LPN = iface.LPN
	// Request is one IO traveling through the stack.
	Request = iface.Request
	// Tags is open-interface request metadata.
	Tags = iface.Tags
	// Priority is the scheduling weight carried by the priority tag.
	Priority = iface.Priority
	// Temperature is expected update frequency (hot/cold).
	Temperature = iface.Temperature
	// Message is anything exchanged on the open-interface bus.
	Message = iface.Message
	// PriorityHint assigns a priority to a thread's future IOs.
	PriorityHint = iface.PriorityHint
	// LocalityHint declares pages that share update-locality.
	LocalityHint = iface.LocalityHint
	// TemperatureHint declares an LPN range hot or cold.
	TemperatureHint = iface.TemperatureHint
)

// Request type, priority and temperature constants.
const (
	ReadIO  = iface.Read
	WriteIO = iface.Write
	TrimIO  = iface.Trim

	PriorityLow    = iface.PriorityLow
	PriorityNormal = iface.PriorityNormal
	PriorityHigh   = iface.PriorityHigh

	TempUnknown = iface.TempUnknown
	TempCold    = iface.TempCold
	TempHot     = iface.TempHot
)

// SSD controller configuration.
type (
	// ControllerConfig assembles the SSD controller.
	ControllerConfig = controller.Config
	// MappingScheme selects the FTL (page map in RAM, or DFTL).
	MappingScheme = controller.MappingScheme
)

// Mapping schemes.
const (
	MapPageRAM = controller.MapPageRAM
	MapDFTL    = controller.MapDFTL
)

// WLConfig configures wear leveling.
type WLConfig = wl.Config

// WLDefault returns the default wear-leveling configuration (static and
// dynamic enabled).
func WLDefault() WLConfig { return wl.DefaultConfig() }

// WLOff returns a wear-leveling configuration with both modes disabled.
func WLOff() WLConfig { return controller.WLOff() }

// GC victim-selection policies.
type (
	// GCPolicy selects which block garbage collection reclaims.
	GCPolicy = gc.VictimPolicy
	// GCGreedy picks the block with the fewest live pages.
	GCGreedy = gc.Greedy
	// GCCostBenefit weighs migration cost against reclaimed space and age.
	GCCostBenefit = gc.CostBenefit
	// GCRandom picks uniformly among non-full candidates (baseline).
	GCRandom = gc.Random
)

// Hot/cold detection.
type (
	// Detector classifies written pages hot or cold.
	Detector = hotcold.Detector
	// BloomDetector is the multiple-bloom-filter hot-data identifier
	// (Park & Du, MSST 2011).
	BloomDetector = hotcold.MBF
	// BloomDetectorConfig tunes the multi-bloom-filter detector.
	BloomDetectorConfig = hotcold.MBFConfig
	// NoDetector classifies nothing (always unknown).
	NoDetector = hotcold.None
)

// NewBloomDetector builds the multi-bloom-filter detector with the paper-ish
// default parameters.
func NewBloomDetector() *BloomDetector {
	return hotcold.NewMBF(hotcold.DefaultMBFConfig())
}

// Runtime fault injection. A FaultModel set on ControllerConfig.Fault is
// consulted on every data-region program and erase; the controller recovers
// gracefully — relocating failed writes, retiring grown-bad blocks and
// migrating their survivors — until retirement exhausts the free pool and
// the run fails with ErrDeviceWornOut. Injection is seeded and
// deterministic: (Config, Seed) still fully determines the run, and model
// state rides along in device snapshots.
type (
	// FaultModel decides, per flash operation, whether it fails.
	FaultModel = fault.Model
	// FaultOutcome is a model's verdict for one operation.
	FaultOutcome = fault.Outcome
	// RandomFaults fails operations with fixed per-op probabilities.
	RandomFaults = fault.Random
	// WearoutFaults fails operations with probability rising along an
	// endurance-derived curve of the block's erase count.
	WearoutFaults = fault.Wearout
	// ScheduledFault fires exactly one fault at an erase-count or
	// virtual-time threshold, for reproducible single-fault experiments.
	ScheduledFault = fault.At
	// Reliability aggregates a run's fault-recovery totals: retries,
	// relocations, erase failures, grown bad blocks.
	Reliability = controller.Reliability
)

// Fault outcomes.
const (
	FaultOK          = fault.OK
	FaultProgramFail = fault.ProgramFail
	FaultEraseFail   = fault.EraseFail
	FaultGrownBad    = fault.GrownBad
)

// ErrDeviceWornOut reports that runtime block retirement exhausted a LUN's
// free pool — the device can no longer absorb writes; test with errors.Is.
var ErrDeviceWornOut = controller.ErrDeviceWornOut

// NewRandomFaults builds a fixed-probability fault model: each program
// fails with pfail (escalating to a grown-bad block retirement with
// conditional probability pgrown), each erase fails — retiring the block —
// with efail. seed seeds the model's private RNG.
func NewRandomFaults(pfail, efail, pgrown float64, seed uint64) *RandomFaults {
	return fault.NewRandom(pfail, efail, pgrown, seed)
}

// NewWearoutFaults builds an endurance-curve fault model: erases fail with
// probability min(1, (eraseCount/endurance)^shape), programs with
// programFactor times that, escalating to grown-bad past the endurance
// limit.
func NewWearoutFaults(endurance int, shape, programFactor float64, seed uint64) *WearoutFaults {
	return fault.NewWearout(endurance, shape, programFactor, seed)
}

// SSD-side IO scheduling.
type (
	// SSDPolicy orders the controller's single IO queue.
	SSDPolicy = sched.Policy
	// SSDFIFO dispatches in arrival order.
	SSDFIFO = sched.FIFO
	// SSDPriority scores requests by tag, type preference and source.
	SSDPriority = sched.Priority
	// SSDDeadline serves overdue requests first (starvation guard).
	SSDDeadline = sched.Deadline
	// SSDFair serves IO sources in weighted round-robin.
	SSDFair = sched.Fair
	// Preference biases a priority policy between reads and writes.
	Preference = sched.Preference
	// InternalOrder places internal IOs (GC/WL/mapping) against application IOs.
	InternalOrder = sched.InternalOrder
	// Allocator decides which LUN a write lands on.
	Allocator = sched.Allocator
	// AllocRoundRobin rotates writes across LUNs.
	AllocRoundRobin = sched.RoundRobin
	// AllocLeastLoaded picks the soonest-free allocatable LUN.
	AllocLeastLoaded = sched.LeastLoaded
	// AllocStriped statically maps LPN mod N to a LUN.
	AllocStriped = sched.Striped
	// PatternDetector classifies per-thread logical address patterns
	// (sequential vs random), §2.2's "record and exploit information about
	// logical address patterns".
	PatternDetector = sched.PatternDetector
	// AllocPatternAware stripes detected sequential runs across LUNs so a
	// later sequential scan fans out; random writes go least-loaded.
	AllocPatternAware = sched.PatternAware
)

// Scheduling preference and internal-order constants.
const (
	PreferNone    = sched.PreferNone
	PreferReads   = sched.PreferReads
	PreferWrites  = sched.PreferWrites
	InternalEqual = sched.InternalEqual
	InternalLast  = sched.InternalLast
	InternalFirst = sched.InternalFirst
)

// OS layer.
type (
	// OSConfig configures the operating-system scheduler.
	OSConfig = osched.Config
	// OSPolicy orders the OS pending pool.
	OSPolicy = osched.Policy
	// OSFIFO issues in submission order (the default).
	OSFIFO = osched.FIFO
	// OSPrio issues by priority tag, optionally reads-first.
	OSPrio = osched.Prio
	// OSCFQ round-robins threads with a quantum.
	OSCFQ = osched.CFQ
	// OSElevator serves in ascending-LPN sweeps (C-SCAN). Its HDD rationale
	// — minimizing seeks — does not exist on an SSD; it is included to show
	// that contract breaking.
	OSElevator = osched.Elevator
)

// Workload layer.
type (
	// Thread is a simulated application: Init plus a completion callback.
	Thread = workload.Thread
	// Ctx is a thread's window onto the stack.
	Ctx = workload.Ctx
	// Handle names a registered thread for dependencies.
	Handle = workload.Handle
	// SequentialWriter writes a range in order (device preparation).
	SequentialWriter = workload.SequentialWriter
	// SequentialReader reads a range in order.
	SequentialReader = workload.SequentialReader
	// RandomWriter writes uniformly over a range (aging, overwrite stress).
	RandomWriter = workload.RandomWriter
	// RandomReader reads uniformly over a range.
	RandomReader = workload.RandomReader
	// ZipfWriter writes with Zipf-skewed popularity (hot/cold workloads).
	ZipfWriter = workload.ZipfWriter
	// ReadWriteMix interleaves uniform reads and writes.
	ReadWriteMix = workload.ReadWriteMix
	// Trimmer trims a range.
	Trimmer = workload.Trimmer
	// FileSystem models file create/overwrite/delete over extents.
	FileSystem = workload.FileSystem
	// GraceJoin follows the IO pattern of a Grace hash join.
	GraceJoin = workload.GraceJoin
	// LSMInsert follows the IO pattern of LSM-tree insertions.
	LSMInsert = workload.LSMInsert
	// ExternalSort follows the IO pattern of external merge sort.
	ExternalSort = workload.ExternalSort
	// FuncThread wraps plain functions as a thread (barriers, custom logic).
	FuncThread = workload.Func
	// Replay replays a captured or converted block trace through the stack.
	Replay = workload.Replay
	// ReplayMode paces a replay: closed-loop, open-loop or dependent.
	ReplayMode = workload.ReplayMode
)

// Replay pacing modes.
const (
	ReplayClosedLoop = workload.ReplayClosedLoop
	ReplayOpenLoop   = workload.ReplayOpenLoop
	ReplayDependent  = workload.ReplayDependent
)

// ParseReplayMode maps the command-line spellings onto replay modes.
func ParseReplayMode(s string) (ReplayMode, error) { return workload.ParseReplayMode(s) }

// Block-trace capture and codecs.
type (
	// IOTrace is a canonical application-level block trace.
	IOTrace = trace.Trace
	// TraceRecord is one traced IO.
	TraceRecord = trace.Record
	// TraceCapture records the app-level IO stream of a live run; wire it
	// to Config.OS.Capture.
	TraceCapture = trace.Capture
	// TraceMismatchError reports a replayed trace whose content hash does
	// not match the provenance its spec pinned (IOTrace.Hash).
	TraceMismatchError = trace.MismatchError
)

// NewTraceCapture returns an active capture with origin 0.
func NewTraceCapture() *TraceCapture { return trace.NewCapture() }

// WriteTraceFile encodes a trace to path (binary when it ends in .etb, the
// versioned text form otherwise).
func WriteTraceFile(path string, t *IOTrace) error { return trace.WriteFile(path, t) }

// ReadTraceFile decodes a trace from path, sniffing text vs binary.
func ReadTraceFile(path string) (*IOTrace, error) { return trace.ReadFile(path) }

// Stack assembly and reports.
type (
	// Config configures every layer of the stack.
	Config = core.Config
	// Stack is one assembled simulation.
	Stack = core.Stack
	// Report is the metric snapshot of a measured run.
	Report = core.Report
	// LatencySummary condenses one latency distribution.
	LatencySummary = core.LatencySummary
	// WearSummary describes the erase-count distribution.
	WearSummary = core.WearSummary
)

// New assembles a simulation stack from the configuration.
func New(cfg Config) (*Stack, error) { return core.New(cfg) }

// Device-state snapshots: instant aged-device preparation.
type (
	// DeviceState is the complete serialized state of a quiescent stack:
	// flash contents and wear, FTL mapping tables (CMT included), free
	// lists, GC/WL counters, the virtual clock and thread/RNG origins.
	DeviceState = snapshot.DeviceState
)

// RestoreStack builds a stack from the configuration and the saved device
// state. Threads registered afterwards continue the saved run exactly, so a
// restored run is bit-identical to one that prepared the device in-process.
func RestoreStack(cfg Config, st *DeviceState) (*Stack, error) { return core.Restore(cfg, st) }

// WriteStateFile saves a device state to path in the versioned binary
// snapshot format (atomic write, CRC-protected).
func WriteStateFile(path string, st *DeviceState) error { return snapshot.WriteFile(path, st) }

// ReadStateFile loads a device state saved by WriteStateFile.
func ReadStateFile(path string) (*DeviceState, error) { return snapshot.ReadFile(path) }

// Experiment suite.
type (
	// Experiment is a template: a parameter, a strategy to vary it, and a
	// workload.
	Experiment = experiment.Definition
	// Variant is one setting of the varied parameter.
	Variant = experiment.Variant
	// Results collects per-variant outcomes.
	Results = experiment.Results
	// ResultRow is one variant's outcome.
	ResultRow = experiment.Row
	// Metric extracts one scalar from a report.
	Metric = experiment.Metric
	// PrepareSpec declares device preparation (fill + age) so the runner
	// can snapshot-cache prepared state across variants.
	PrepareSpec = experiment.PrepareSpec
	// ExperimentOptions tunes experiment execution (workers, state cache,
	// event observer).
	ExperimentOptions = experiment.Options
	// StateCache deduplicates device preparation across variants and runs.
	StateCache = experiment.StateCache
)

// NewStateCache returns a snapshot cache for experiment preparation,
// disk-backed under dir when non-empty.
func NewStateCache(dir string) *StateCache { return experiment.NewStateCache(dir) }

// Context-aware streaming experiment execution. NewRunner(opts).Run(ctx, def)
// is the first-class run API: it honors cancellation and deadlines mid-sweep
// (workers drain deterministically; partial Results carry the completed row
// prefix alongside a typed ErrRunCanceled) and streams typed events — variant
// lifecycle, snapshot-cache provenance, timings — to an optional Observer.
type (
	// ExperimentRunner executes experiments under a context with an event
	// stream; results are bit-identical to a sequential run at any worker
	// count.
	ExperimentRunner = experiment.Runner
	// ExperimentEvent is one observation of a running experiment.
	ExperimentEvent = experiment.Event
	// ExperimentEventKind discriminates runner events.
	ExperimentEventKind = experiment.EventKind
	// ExperimentObserver receives runner events (serialized calls).
	ExperimentObserver = experiment.Observer
	// ExperimentObserverFunc adapts a function to ExperimentObserver.
	ExperimentObserverFunc = experiment.ObserverFunc
	// RunCanceledError is the typed error of a canceled run: completed
	// prefix length, total, and the context's cause.
	RunCanceledError = experiment.CanceledError
	// ExperimentVariantError is the typed error of a variant whose
	// execution panicked: the recovered value plus a stack trace. The
	// runner isolates the crash — remaining variants still complete.
	ExperimentVariantError = experiment.VariantError
)

// Runner event kinds: every variant gets exactly one VariantQueued and one
// of VariantDone/VariantFailed/VariantCanceled, declared preparation reports
// its cache provenance, and the run closes with one ExperimentDone.
const (
	EventVariantQueued   = experiment.EventVariantQueued
	EventPrepareHit      = experiment.EventPrepareHit
	EventPrepareMiss     = experiment.EventPrepareMiss
	EventVariantDone     = experiment.EventVariantDone
	EventVariantFailed   = experiment.EventVariantFailed
	EventVariantCanceled = experiment.EventVariantCanceled
	EventExperimentDone  = experiment.EventExperimentDone
)

// ErrRunCanceled reports an experiment run cut short by its context; test
// with errors.Is. The concrete error is a *RunCanceledError.
var ErrRunCanceled = experiment.ErrCanceled

// NewRunner returns the context-aware experiment runner.
//
//	runner := eagletree.NewRunner(eagletree.ExperimentOptions{Observer: obs})
//	res, err := runner.Run(ctx, def)
func NewRunner(opts ExperimentOptions) *ExperimentRunner { return experiment.New(opts) }

// ChanExperimentObserver adapts a channel to ExperimentObserver: every event
// is sent (blocking) to ch. The runner never closes ch.
func ChanExperimentObserver(ch chan<- ExperimentEvent) ExperimentObserver {
	return experiment.ChanObserver(ch)
}

// RunExperimentOpts executes an experiment with explicit options.
//
// Deprecated: use NewRunner(opts).Run(ctx, def), which adds cancellation and
// event streaming. This wrapper runs under context.Background.
func RunExperimentOpts(def Experiment, opts ExperimentOptions) (Results, error) {
	return experiment.RunOpts(def, opts)
}

// Standard chartable metrics.
var (
	MetricThroughput = experiment.MetricThroughput
	MetricReadMean   = experiment.MetricReadMean
	MetricWriteMean  = experiment.MetricWriteMean
	MetricReadP99    = experiment.MetricReadP99
	MetricWriteP99   = experiment.MetricWriteP99
	MetricReadStd    = experiment.MetricReadStd
	MetricWriteStd   = experiment.MetricWriteStd
	MetricWA         = experiment.MetricWA
	MetricGCPages    = experiment.MetricGCPages
	MetricWearSpread = experiment.MetricWearSpread
)

// RunExperiment executes one simulation per variant and collects results.
//
// Deprecated: use NewRunner(ExperimentOptions{}).Run(ctx, def), which adds
// cancellation and event streaming. This wrapper runs under
// context.Background.
func RunExperiment(def Experiment) (Results, error) { return experiment.Run(def) }

// Declarative experiment specs: experiments as data, not code. A spec names
// every pluggable component through the registry, so a JSON document fully
// describes a run — base configuration, device preparation, workload threads
// and a variant grid — and new design-space points need no recompile.
type (
	// ExperimentSpec is a complete serializable experiment document.
	ExperimentSpec = spec.Experiment
	// SpecConfig is the serializable mirror of Config (components by name).
	SpecConfig = spec.Config
	// SpecVariant is one point of a spec's sweep grid.
	SpecVariant = spec.Variant
	// SpecAxis is one dimension of a spec's grid form: the document declares
	// axes and the runner cross-products them into the variant list.
	SpecAxis = spec.Axis
	// SpecThread declares one workload thread by registered type name.
	SpecThread = spec.Thread
	// SpecPrep declares device preparation (fill + age) in a spec.
	SpecPrep = spec.Prep
	// SpecRef names a registered component, optionally with parameters.
	SpecRef = spec.Ref
	// SpecEnv supplies the variables spec workload expressions resolve
	// against (n, ppb, qd, f, i).
	SpecEnv = spec.Env
	// SpecKind partitions the component registry (policies, allocators, …).
	SpecKind = spec.Kind
	// SpecComponent is one registered named factory with typed parameters.
	SpecComponent = spec.Component
)

// Component registry kinds.
const (
	SpecKindPolicy    = spec.KindPolicy
	SpecKindAllocator = spec.KindAllocator
	SpecKindGCPolicy  = spec.KindGCPolicy
	SpecKindWL        = spec.KindWL
	SpecKindDetector  = spec.KindDetector
	SpecKindMapping   = spec.KindMapping
	SpecKindTiming    = spec.KindTiming
	SpecKindOSPolicy  = spec.KindOSPolicy
	SpecKindThread    = spec.KindThread
)

// DecodeExperimentSpec parses a versioned spec document; unknown fields,
// wrong versions and truncation are typed errors.
func DecodeExperimentSpec(data []byte) (ExperimentSpec, error) { return spec.Decode(data) }

// EncodeExperimentSpec renders a spec document in its canonical JSON form.
func EncodeExperimentSpec(e ExperimentSpec) ([]byte, error) { return spec.Encode(e) }

// ReadExperimentSpec loads and decodes a spec file.
func ReadExperimentSpec(path string) (ExperimentSpec, error) { return spec.ReadFile(path) }

// WriteExperimentSpec encodes and writes a spec file.
func WriteExperimentSpec(path string, e ExperimentSpec) error { return spec.WriteFile(path, e) }

// ExperimentFromSpec compiles a spec document into a runnable Experiment,
// validating every component name, parameter and expression.
func ExperimentFromSpec(e ExperimentSpec) (Experiment, error) { return experiment.FromSpec(e) }

// ConfigSpecOf describes a live configuration as a spec, with every
// component reverse-mapped through the registry; configurations holding
// unregistered component types are a typed error.
func ConfigSpecOf(cfg Config) (SpecConfig, error) { return spec.FromConfig(cfg) }

// MakeSpecThread resolves one spec thread declaration against an
// environment (n, ppb, qd, f, i) into a live workload thread.
func MakeSpecThread(t SpecThread, env SpecEnv) (Thread, error) { return spec.MakeThread(t, env) }

// RegisterSpecRun registers a single-run spec (the base configuration with
// one variant's preparation and workload) onto a live stack in the in-stack
// barrier flow — preparation threads, a measurement barrier, then the
// measured threads, in the same order the flag-driven CLI registers them.
func RegisterSpecRun(doc ExperimentSpec, v SpecVariant, s *Stack) error {
	return experiment.RegisterRun(doc, v, s)
}

// RegisterSpecComponent adds a named component factory to the registry —
// the hook for applications to make their own policies, detectors or thread
// types spec-addressable (and snapshot-cache keyable).
func RegisterSpecComponent(c SpecComponent) { spec.Register(c) }

// SpecCatalogue returns the registered components of one kind, in
// registration order, for documentation and listings.
func SpecCatalogue(kind SpecKind) []*SpecComponent { return spec.Catalogue(kind) }

// SpecMarkdown renders the full component catalogue — including components
// the application registered — as the SPEC.md reference page; `eagletree
// doc` prints exactly this.
func SpecMarkdown() string { return spec.Markdown() }

// SuiteSpecs returns the predefined E1–E13 experiments as spec data; the
// checked-in specs/*.json files are their canonical encodings.
func SuiteSpecs(full bool) []ExperimentSpec {
	if full {
		return experiment.SuiteSpecs(experiment.Full)
	}
	return experiment.SuiteSpecs(experiment.Small)
}

// Distributed sweep fabric: shard a spec document's variant grid across
// worker processes and merge the rows back byte-identically to a sequential
// run. See internal/fabric and DESIGN.md "Distributed sweep fabric".
type (
	// FabricOptions configures a distributed sweep coordinator.
	FabricOptions = fabric.Options
	// FabricWorkerOptions configures one worker session.
	FabricWorkerOptions = fabric.WorkerOptions
)

// RunDistributed executes a spec document's variant grid across worker
// processes — subprocesses, TCP connections, or supplied transports — and
// merges the rows deterministically by grid position.
func RunDistributed(ctx context.Context, doc ExperimentSpec, opts FabricOptions) (Results, error) {
	return fabric.Run(ctx, doc, opts)
}

// ServeWorker runs one sweep-fabric worker session over a byte stream until
// the coordinator shuts it down; `eagletree worker` is this over
// stdin/stdout or a TCP connection.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, opts FabricWorkerOptions) error {
	return fabric.Serve(ctx, r, w, opts)
}

// Result store & relational query layer: every sweep row persisted with
// provenance (spec digest, seed, commit label), replicated across seeds with
// confidence intervals, and comparable across commits. See internal/resultstore,
// internal/query and DESIGN.md "Result store & query layer".
type (
	// ResultStore is an append-only directory of CRC-protected columnar
	// segments holding sweep result rows.
	ResultStore = resultstore.Store
	// StoredRow is one persisted sweep outcome: provenance plus the full
	// report, one value per registered result column.
	StoredRow = resultstore.Row
	// ResultSink is an ExperimentObserver that captures finished variants
	// as StoredRows, in grid order, for persistence.
	ResultSink = resultstore.Sink
	// ResultColumn describes one result-store column: name, kind, and which
	// direction is better (for regression verdicts).
	ResultColumn = resultstore.ColumnSpec
	// QueryTable is an ordered, typed, immutable relational table over
	// stored rows; every operator returns a new table deterministically.
	QueryTable = query.Table
	// QueryPredicate is one parsed -where filter clause.
	QueryPredicate = query.Predicate
	// QueryAgg is one parsed aggregate expression, e.g. mean(throughput_iops).
	QueryAgg = query.Agg
	// RegressionSummary totals a cross-commit diff: comparisons, regressions,
	// improvements, unchanged, unpaired.
	RegressionSummary = query.DiffSummary
)

// OpenResultStore opens (creating if absent) a result store directory, as
// `eagletree sweep -results DIR` and `eagletree results` do.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// NewResultSink returns an observer that captures a sweep's finished
// variants as StoredRows with provenance; attach it via ExperimentOptions
// (or MultiExperimentObserver) and call Flush to append the rows. A nil
// store captures without persisting.
func NewResultSink(store *ResultStore, doc ExperimentSpec, commit string) (*ResultSink, error) {
	return resultstore.NewSink(store, doc, commit)
}

// ResultColumns returns the full result-store column schema, in stored
// order.
func ResultColumns() []ResultColumn { return resultstore.Columns() }

// QueryFromRows lifts stored rows into a relational table, one row per
// StoredRow in the given order.
func QueryFromRows(rows []StoredRow) *QueryTable { return query.FromRows(rows) }

// DiffResults compares two stored sweeps by commit label, pairing rows on
// (experiment, variant position, label, seed) and testing per-seed deltas
// against their own 95% confidence interval; `eagletree results diff` prints
// exactly this table and summary.
func DiffResults(rows []StoredRow, a, b string, metrics []string) (*QueryTable, RegressionSummary, error) {
	return query.Diff(rows, a, b, metrics)
}

// MultiExperimentObserver fans runner events out to several observers in
// order — e.g. a progress printer plus a ResultSink.
func MultiExperimentObserver(obs ...ExperimentObserver) ExperimentObserver {
	return experiment.MultiObserver(obs...)
}

// DefaultConfig returns a mid-size SSD: 4 channels × 2 LUNs, 256 blocks per
// LUN of 64 pages (512 MiB raw at 4 KiB pages), SLC timings, page-map FTL,
// greedy GC, wear leveling on, FIFO scheduling, queue depth 32.
func DefaultConfig() Config {
	return Config{
		Controller: ControllerConfig{
			Geometry:      Geometry{Channels: 4, LUNsPerChannel: 2, BlocksPerLUN: 256, PagesPerBlock: 64, PageSize: 4096},
			Timing:        TimingSLC(),
			Overprovision: 0.1,
			GCGreediness:  2,
			WL:            WLDefault(),
		},
		OS:   OSConfig{QueueDepth: 32},
		Seed: 1,
	}
}

// SmallConfig returns a deliberately tiny SSD (2×2 LUNs, 64 blocks of 16
// pages) that reaches steady-state GC within seconds of real time — the
// right scale for tests and quick explorations.
func SmallConfig() Config {
	return Config{
		Controller: ControllerConfig{
			Geometry:      Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 16, PageSize: 4096},
			Timing:        TimingSLC(),
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            WLOff(),
		},
		OS:   OSConfig{QueueDepth: 16},
		Seed: 1,
	}
}
