// Command customexperiment is the "experiments as data" walkthrough: it
// defines a design-space experiment that exists nowhere in the compiled
// suite — comparing OS scheduling policies (including the deliberately
// SSD-hostile elevator) over an aged device — purely as a spec document,
// then resolves and runs it through the component registry.
//
// The embedded custom.json is the entire experiment: base configuration
// with every component named, device preparation, a two-thread workload
// sized by expressions over the device capacity ("2000*f", "n/2", "ppb"),
// and a variant grid overriding configuration paths. Edit the JSON — swap
// "policy": "fifo" for {"name": "deadline", "params": {...}}, add a
// variant, change the geometry — and rerun; no Go code changes needed.
// The same file runs from the CLIs: eagletree -spec custom.json or
// sweep -spec custom.json.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"os"
	"os/signal"

	"eagletree"
)

//go:embed custom.json
var customSpec []byte

func main() {
	doc, err := eagletree.DecodeExperimentSpec(customSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "customexperiment:", err)
		os.Exit(1)
	}
	def, err := eagletree.ExperimentFromSpec(doc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "customexperiment:", err)
		os.Exit(1)
	}

	// The streaming Runner is the first-class run API: ^C cancels mid-sweep
	// (partial results return with a typed ErrRunCanceled), and the event
	// stream reports each variant's lifecycle with its snapshot-cache
	// provenance — hit means the variant restored an already-aged device.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := eagletree.NewRunner(eagletree.ExperimentOptions{
		Observer: eagletree.ExperimentObserverFunc(func(ev eagletree.ExperimentEvent) {
			switch ev.Kind {
			case eagletree.EventPrepareMiss:
				fmt.Fprintf(os.Stderr, "  %s: aging a fresh device (%v)\n", ev.Variant, ev.Wall)
			case eagletree.EventPrepareHit:
				fmt.Fprintf(os.Stderr, "  %s: restored the shared aged state (%v)\n", ev.Variant, ev.Wall)
			case eagletree.EventVariantDone:
				fmt.Fprintf(os.Stderr, "  %s: done in %v\n", ev.Variant, ev.Wall)
			}
		}),
	})
	res, err := runner.Run(ctx, def)
	if err != nil {
		fmt.Fprintln(os.Stderr, "customexperiment:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n%s\n\n", doc.Doc, doc.Varies)
	fmt.Println(res.Table())
	fmt.Println(res.Chart(eagletree.MetricReadMean, 40))

	// The registry is introspectable: everything a spec may name, with its
	// typed parameters, straight from the components themselves.
	fmt.Println("registered OS policies a spec can name:")
	for _, c := range eagletree.SpecCatalogue(eagletree.SpecKindOSPolicy) {
		fmt.Printf("  %-10s %s\n", c.Name, c.Doc)
		for _, p := range c.Params {
			fmt.Printf("             %s (%s): %s\n", p.Name, p.Type, p.Doc)
		}
	}
}
