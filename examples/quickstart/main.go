// Quickstart: assemble a default SSD, prepare it following the paper's
// methodology (sequential fill, then random aging), and measure a random
// overwrite workload in steady state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eagletree"
)

func main() {
	cfg := eagletree.DefaultConfig()
	cfg.SeriesBucket = 50 * eagletree.Millisecond

	s, err := eagletree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := int64(s.LogicalPages())
	fmt.Printf("simulated SSD: %d logical pages (%.0f MiB), %d LUNs\n",
		n, float64(n)*4096/(1<<20), cfg.Controller.Geometry.LUNs())

	// Device preparation (§2.3): write the whole logical space sequentially,
	// then overwrite it randomly once, so measurements start from a
	// well-defined steady state instead of a fresh-out-of-box device.
	seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	barrier := s.AddBarrier(age)

	// The measured workload: one more random overwrite pass.
	s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, barrier)

	s.Run()
	fmt.Println()
	fmt.Print(s.Report())
	if ts := s.Stats.Series(); ts != nil {
		fmt.Printf("\ncompletions over time:\n%s\n", ts.Sparkline())
	}
}
