// Grace hash join vs SSD parallelism: the paper's motivating application
// question — how much does an IO-bound join algorithm gain from submitting
// enough concurrent IOs to cover the flash array?
//
// The same join (partition R, partition S, probe) runs at increasing IO
// depth on the same 8-LUN SSD. Shallow submission serializes on one LUN at a
// time; deep submission keeps all LUNs busy.
//
//	go run ./examples/gracejoin
package main

import (
	"fmt"
	"log"

	"eagletree"
)

func main() {
	fmt.Println("Grace hash join on an 8-LUN SSD, varying the join's IO depth")
	fmt.Println()
	fmt.Printf("%8s %14s %16s\n", "depth", "join time", "throughput")

	var base eagletree.Duration
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		cfg := eagletree.DefaultConfig()
		cfg.Controller.Geometry = eagletree.Geometry{
			Channels: 4, LUNsPerChannel: 2, BlocksPerLUN: 128, PagesPerBlock: 64, PageSize: 4096,
		}
		// Without interleaving a page program holds its channel end to end,
		// capping write parallelism at the channel count (4) instead of the
		// LUN count (8) — try flipping this to false to see that wall.
		cfg.Controller.Features = eagletree.Features{Interleaving: true}
		s, err := eagletree.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		n := int64(s.LogicalPages())
		r := n / 8 // R relation size in pages; S is twice that

		join := &eagletree.GraceJoin{
			RFrom: 0, RPages: r,
			SFrom: eagletree.LPN(r), SPages: 2 * r,
			PartFrom:   eagletree.LPN(3 * r),
			Partitions: 8,
			Depth:      depth,
		}
		// Materialize both relations first; measure only the join.
		rel := s.Add(&eagletree.SequentialWriter{From: 0, Count: 3 * r, Depth: 32})
		barrier := s.AddBarrier(rel)
		s.Add(join, barrier)

		s.Run()
		rep := s.Report()
		elapsed := rep.Duration // measured window only: the join itself
		if depth == 1 {
			base = elapsed
		}
		fmt.Printf("%8d %14v %13.0f IOPS   (%.2fx vs depth 1)\n",
			depth, elapsed, rep.Throughput, float64(base)/float64(elapsed))
	}
	fmt.Println("\nThe join is embarrassingly parallel at the IO level: deeper")
	fmt.Println("submission exposes the array's parallelism until the channels saturate.")
}
