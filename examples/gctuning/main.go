// GC tuning walk-through: sweep the GC greediness parameter and watch the
// trade-off the paper describes in §2.2 — waiting as long as possible before
// collecting maximizes invalid pages per victim (low write amplification),
// but leaves less slack for incoming writes (worse tail latency).
//
//	go run ./examples/gctuning
package main

import (
	"fmt"
	"log"

	"eagletree"
)

func main() {
	def := eagletree.Experiment{
		Name: "gc-greediness",
		Base: eagletree.SmallConfig,
		Variants: []eagletree.Variant{
			variant(1), variant(2), variant(3), variant(4), variant(6), variant(8),
		},
		Prepare: func(s *eagletree.Stack) []*eagletree.Handle {
			n := int64(s.LogicalPages())
			seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
			age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
			return []*eagletree.Handle{age}
		},
		Workload: func(s *eagletree.Stack, after *eagletree.Handle) {
			n := int64(s.LogicalPages())
			s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 32}, after)
		},
	}

	res, err := eagletree.RunExperiment(def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
	fmt.Println(res.Chart(eagletree.MetricWA, 40))
	fmt.Println(res.Chart(eagletree.MetricWriteP99, 40))
	fmt.Println("Lazy GC (greediness=1) migrates the fewest pages; greedy GC pays")
	fmt.Println("migrations for smoother latency. The right setting depends on which")
	fmt.Println("the workload cares about — which is why it is a parameter.")
}

func variant(g int) eagletree.Variant {
	return eagletree.Variant{
		Label:  fmt.Sprintf("greediness=%d", g),
		X:      float64(g),
		Mutate: func(c *eagletree.Config) { c.Controller.GCGreediness = g },
	}
}
