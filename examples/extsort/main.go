// External merge sort on an SSD: the paper's application-layer question
// applied to the classic IO-bound algorithm. Two knobs interact:
//
//   - IO depth — how many concurrent IOs the sort keeps in flight — decides
//     how much of the array's parallelism the sort can use;
//   - run size (the in-memory chunk) decides the run count, which shapes the
//     merge phase's access pattern.
//
// On an HDD, larger memory means fewer, longer runs and that dominates. On
// the simulated SSD, IO depth dwarfs run size: random-ish merge reads cost
// the same as sequential ones, so memory buys little — the "performance
// contract" HDD intuition breaks.
//
//	go run ./examples/extsort
package main

import (
	"fmt"
	"log"

	"eagletree"
)

func sortTime(runPages int64, depth int) (eagletree.Duration, error) {
	cfg := eagletree.DefaultConfig()
	cfg.Controller.Features = eagletree.Features{Interleaving: true}
	s, err := eagletree.New(cfg)
	if err != nil {
		return 0, err
	}
	n := int64(s.LogicalPages())
	input := n / 3

	// Materialize the input, then measure only the sort.
	fill := s.Add(&eagletree.SequentialWriter{From: 0, Count: input, Depth: 32})
	barrier := s.AddBarrier(fill)
	s.Add(&eagletree.ExternalSort{
		From:        0,
		InputPages:  input,
		ScratchFrom: eagletree.LPN(input),
		RunPages:    runPages,
		Depth:       depth,
	}, barrier)
	s.Run()
	return s.Report().Duration, nil
}

func main() {
	fmt.Println("External merge sort: memory (run size) vs IO depth on an SSD")
	fmt.Println()
	fmt.Printf("%12s %8s %16s\n", "run pages", "depth", "sort time")
	for _, runPages := range []int64{32, 128, 512} {
		for _, depth := range []int{1, 8, 32} {
			d, err := sortTime(runPages, depth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12d %8d %16v\n", runPages, depth, d)
		}
		fmt.Println()
	}
	fmt.Println("Reading down a column (same depth): 16x more memory barely moves the")
	fmt.Println("needle. Reading across a row (same memory): IO depth is worth several")
	fmt.Println("fold. On this device the sort is parallelism-bound, not memory-bound.")
}
