// Open interface tour: the three extensions the paper sketches — priorities,
// update-locality, temperatures — each demonstrated against block-device
// mode on the same workload, using the experiment suite.
//
//	go run ./examples/openinterface
package main

import (
	"fmt"
	"log"

	"eagletree"
)

func main() {
	// Priorities: a latency-critical reader against a background writer.
	prio := eagletree.Experiment{
		Name: "priorities",
		Base: func() eagletree.Config {
			cfg := eagletree.SmallConfig()
			cfg.Controller.Policy = &eagletree.SSDPriority{UseTags: true}
			// The SSD can only reorder what it can see: a shallow OS queue
			// keeps tagged IOs stuck in the (FIFO) OS pool, hiding the
			// benefit — a cross-layer interaction worth reproducing.
			cfg.OS.QueueDepth = 64
			return cfg
		},
		Variants: []eagletree.Variant{
			{Label: "block-device"},
			{Label: "open", Mutate: func(c *eagletree.Config) { c.Controller.OpenInterface = true }},
		},
		Prepare: prepare,
		Workload: func(s *eagletree.Stack, after *eagletree.Handle) {
			n := int64(s.LogicalPages())
			s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: 3000, Depth: 32}, after)
			s.Add(&eagletree.RandomReader{From: 0, Space: n, Count: 800, Depth: 4,
				Tags: eagletree.Tags{Priority: eagletree.PriorityHigh}}, after)
		},
	}

	// Update-locality: a file system whose files die as units.
	locality := eagletree.Experiment{
		Name: "update-locality",
		Base: func() eagletree.Config {
			cfg := eagletree.SmallConfig()
			cfg.Controller.OpenInterface = true
			return cfg
		},
		Variants: []eagletree.Variant{
			{Label: "block-device", Mutate: func(c *eagletree.Config) {
				c.Controller.OpenInterface = false
				c.LockBus = true
			}},
			{Label: "open"},
		},
		Workload: func(s *eagletree.Stack, after *eagletree.Handle) {
			n := int64(s.LogicalPages())
			s.Add(&eagletree.FileSystem{From: 0, Space: n, Ops: 800, Depth: 16,
				MeanFilePages: 24, TagLocality: true}, after)
		},
	}

	// Temperatures: zipf overwrite with oracle tags vs nothing.
	temps := eagletree.Experiment{
		Name: "temperatures",
		Base: func() eagletree.Config {
			cfg := eagletree.SmallConfig()
			cfg.Controller.OpenInterface = true
			return cfg
		},
		Variants: []eagletree.Variant{
			{Label: "untagged"},
			{Label: "oracle-tags", Workload: func(s *eagletree.Stack, after *eagletree.Handle) {
				zipf(s, after, true)
			}},
		},
		Prepare: prepare,
		Workload: func(s *eagletree.Stack, after *eagletree.Handle) {
			zipf(s, after, false)
		},
	}

	for _, def := range []eagletree.Experiment{prio, locality, temps} {
		res, err := eagletree.RunExperiment(def)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
	}
	fmt.Println("Unlocking the interface is the paper's 'red lock': the same workload,")
	fmt.Println("the same SSD — only the information crossing the interface changed.")
}

func prepare(s *eagletree.Stack) []*eagletree.Handle {
	n := int64(s.LogicalPages())
	seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
	return []*eagletree.Handle{seq}
}

func zipf(s *eagletree.Stack, after *eagletree.Handle, oracle bool) {
	n := int64(s.LogicalPages())
	s.Add(&eagletree.ZipfWriter{From: 0, Space: n, Count: 2 * n, Exponent: 1.2,
		Depth: 32, TagTemperature: oracle, HotFraction: 0.2}, after)
}
