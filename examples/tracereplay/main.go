// Trace capture & replay walkthrough: record the app-level IO stream of a
// file-system workload on an aged device, persist it as a portable block
// trace, and replay the identical stream in all three pacing modes — the
// methodology for A/B-ing SSD design decisions on one fixed workload, and
// for driving the simulator with real (MSR-style) traces instead of
// synthetic generators.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"eagletree"
)

func main() {
	// 1. Capture: run an aged file-system workload with a capture wired to
	// the OS scheduler layer. The capture is armed at the measurement
	// barrier, so preparation traffic stays out of the trace.
	capture := eagletree.NewTraceCapture()
	capture.Stop()

	cfg := eagletree.SmallConfig()
	cfg.OS.Capture = capture
	s, err := eagletree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := int64(s.LogicalPages())
	seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	barrier := s.AddBarrier(age)
	arm := s.Add(&eagletree.FuncThread{F: func(ctx *eagletree.Ctx) {
		capture.Start(ctx.Now())
	}}, barrier)
	s.Add(&eagletree.FileSystem{From: 0, Space: n * 3 / 4, Ops: 1500, Depth: 8}, arm)
	s.Run()

	tr := capture.Trace()
	fmt.Printf("captured %d IOs (%d pages) spanning %v\n", tr.Len(), tr.Pages(), tr.Duration())

	// 2. Persist: the trace round-trips through the compact binary codec
	// (use a .trace suffix instead for the human-readable text form).
	path := filepath.Join(os.TempDir(), "tracereplay-example.etb")
	if err := eagletree.WriteTraceFile(path, tr); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	loaded, err := eagletree.ReadTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("persisted to %s (%d bytes), reloaded %d records\n\n", path, info.Size(), loaded.Len())

	// 3. Replay: the identical IO stream, three ways. Closed-loop answers
	// "how fast can this device drain the stream"; open-loop preserves the
	// captured arrival process (with a time-scale knob); dependent
	// serializes each IO behind its predecessor's completion.
	for _, mode := range []struct {
		label  string
		replay eagletree.Replay
	}{
		{"closed-loop depth=16", eagletree.Replay{Trace: loaded, Mode: eagletree.ReplayClosedLoop, Depth: 16}},
		{"open-loop 1x", eagletree.Replay{Trace: loaded, Mode: eagletree.ReplayOpenLoop}},
		{"open-loop 0.5x (double rate)", eagletree.Replay{Trace: loaded, Mode: eagletree.ReplayOpenLoop, TimeScale: 0.5}},
		{"dependent", eagletree.Replay{Trace: loaded, Mode: eagletree.ReplayDependent}},
	} {
		rs, err := eagletree.New(eagletree.SmallConfig())
		if err != nil {
			log.Fatal(err)
		}
		rn := int64(rs.LogicalPages())
		rseq := rs.Add(&eagletree.SequentialWriter{From: 0, Count: rn, Depth: 32})
		rage := rs.Add(&eagletree.RandomWriter{From: 0, Space: rn, Count: rn, Depth: 32}, rseq)
		replay := mode.replay
		rs.Add(&replay, rs.AddBarrier(rage))
		rs.Run()
		rep := rs.Report()
		fmt.Printf("%-28s  %7.0f IOPS  read mean %-12v write mean %-12v p99 %v\n",
			mode.label, rep.Throughput, rep.ReadLatency.Mean, rep.WriteLatency.Mean, rep.WriteLatency.P99)
	}
}
