// LSM-tree insertions over the open interface: WAL appends are the commit
// path, so they carry a high-priority tag; flushes and compactions are
// background work, and a concurrent analytics scan competes for the array.
// With the block-device interface the SSD cannot tell a commit from a scan
// page; with the open interface it schedules the commit path first.
//
// The example measures commit (WAL) latency directly by wrapping the LSM
// thread — the thread framework composes, so instrumenting a workload is a
// ten-line wrapper.
//
//	go run ./examples/lsm
package main

import (
	"fmt"
	"log"
	"math"

	"eagletree"
)

// walProbe wraps LSMInsert and records the latency of WAL appends (the
// first eighth of the LSM region is the circular WAL).
type walProbe struct {
	*eagletree.LSMInsert
	walEnd eagletree.LPN

	n    int
	sum  float64
	max  eagletree.Duration
	sums float64
}

func (w *walProbe) OnComplete(ctx *eagletree.Ctx, r *eagletree.Request) {
	if r.Type == eagletree.WriteIO && r.LPN < w.walEnd {
		lat := r.Latency()
		w.n++
		w.sum += float64(lat)
		w.sums += float64(lat) * float64(lat)
		if lat > w.max {
			w.max = lat
		}
	}
	w.LSMInsert.OnComplete(ctx, r)
}

func (w *walProbe) mean() eagletree.Duration {
	if w.n == 0 {
		return 0
	}
	return eagletree.Duration(w.sum / float64(w.n))
}

func (w *walProbe) std() eagletree.Duration {
	if w.n == 0 {
		return 0
	}
	m := w.sum / float64(w.n)
	v := w.sums/float64(w.n) - m*m
	if v < 0 {
		v = 0
	}
	return eagletree.Duration(math.Sqrt(v))
}

func run(openInterface bool) (*walProbe, eagletree.LatencySummary, error) {
	cfg := eagletree.SmallConfig()
	cfg.Controller.OpenInterface = openInterface
	cfg.Controller.Policy = &eagletree.SSDPriority{UseTags: true}
	cfg.OS.QueueDepth = 64

	s, err := eagletree.New(cfg)
	if err != nil {
		return nil, eagletree.LatencySummary{}, err
	}
	n := int64(s.LogicalPages())

	// Steady-state device, then the LSM engine and a table scanner compete.
	seq := s.Add(&eagletree.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := s.Add(&eagletree.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	barrier := s.AddBarrier(age)

	region := n / 2
	probe := &walProbe{
		LSMInsert: &eagletree.LSMInsert{
			From: 0, Space: region,
			Inserts:       3000,
			MemtablePages: 64,
			Fanout:        4,
			Depth:         8,
			TagPriority:   true,
		},
		walEnd: eagletree.LPN(region / 8),
	}
	s.Add(probe, barrier)
	scan := s.Add(&eagletree.RandomReader{
		From: eagletree.LPN(region), Space: n - region, Count: 8000, Depth: 32,
	}, barrier)

	s.Stats.WatchThread(scan.ID())
	s.Run()

	sl := s.Stats.ThreadLatency(scan.ID())
	scanSum := eagletree.LatencySummary{
		Count: sl.Count(), Mean: sl.Mean(), Std: sl.Std(),
		P99: sl.Percentile(0.99), Max: sl.Max(),
	}
	return probe, scanSum, nil
}

func main() {
	fmt.Println("LSM-tree engine (tagged WAL) vs a concurrent analytics scan")
	fmt.Println()
	for _, open := range []bool{false, true} {
		probe, scan, err := run(open)
		if err != nil {
			log.Fatal(err)
		}
		mode := "block device (tags stripped by the SSD)"
		if open {
			mode = "open interface (WAL tagged high-priority)"
		}
		fmt.Printf("%s\n", mode)
		fmt.Printf("  WAL commit latency  mean %10v   std %10v   max %10v   (n=%d)\n",
			probe.mean(), probe.std(), probe.max, probe.n)
		fmt.Printf("  scan read latency   mean %10v   p99 %10v   (n=%d)\n\n",
			scan.Mean, scan.P99, scan.Count)
	}
	fmt.Println("The commit path's priority tag lets WAL appends overtake scan reads")
	fmt.Println("inside the SSD scheduler; the scan pays — a policy choice the block")
	fmt.Println("interface cannot express.")
}
